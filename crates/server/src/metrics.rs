//! Server counters and the `/metrics` text exposition.
//!
//! Lock-free atomics updated on every request, rendered in the
//! Prometheus text format (names prefixed `trasyn_`). The engine's
//! cache/pool counters come from [`engine::EngineStats`] at render time —
//! the same snapshot shape `trasyn-compile` prints — so the two surfaces
//! can never disagree about what a hit is.
//!
//! Latency is exposed as three histograms over the same bucket bounds:
//! `trasyn_request_latency_ms` (end-to-end, the historic family),
//! `trasyn_queue_wait_ms` (accept → worker pickup), and
//! `trasyn_service_ms` (request read → response written), so dashboards
//! can tell queueing delay from compute. `trasyn_slow_requests_total`
//! counts requests past the tracer's slow threshold — including ones the
//! sampler would otherwise have dropped.
//!
//! Metric names are **append-only**: renaming or dropping a family
//! breaks downstream scrapers, so the golden test in
//! `tests/metrics_golden.rs` pins the full render shape.

use engine::EngineStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (milliseconds) of the latency histogram buckets; the
/// implicit `+Inf` bucket comes after the last one. Chosen to straddle
/// the service's realistic range: sub-millisecond cache hits up to
/// multi-second cold trasyn syntheses.
pub const LATENCY_BUCKETS_MS: [f64; 11] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 1000.0, 10_000.0,
];

/// Request endpoints that get their own counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/compile`
    Compile,
    /// `POST /v1/batch`
    Batch,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /debug/traces`
    Debug,
    /// Anything else (404s, bad methods, …).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 6] = [
        Endpoint::Compile,
        Endpoint::Batch,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Debug,
        Endpoint::Other,
    ];

    /// The `endpoint="..."` label value in `/metrics`.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Compile => "compile",
            Endpoint::Batch => "batch",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Debug => "debug",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Status classes that get their own counter.
const STATUS_CODES: [u16; 7] = [200, 400, 404, 405, 413, 429, 500];

/// One latency histogram: fixed [`LATENCY_BUCKETS_MS`] bounds plus
/// `+Inf`, a microsecond-resolution sum, and a sample count.
#[derive(Default)]
struct Hist {
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    fn observe(&self, ms: f64) {
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&ub| ms <= ub)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us
            .fetch_add((ms * 1e3).max(0.0) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the histogram family (cumulative buckets, as Prometheus
    /// expects) through the caller's line sink.
    fn render(&self, name: &str, line: &mut impl FnMut(String)) {
        line(format!("# TYPE {name} histogram"));
        let mut cumulative = 0u64;
        for (i, &ub) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            line(format!("{name}_bucket{{le=\"{ub}\"}} {cumulative}"));
        }
        cumulative += self.buckets[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed);
        line(format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}"));
        line(format!(
            "{name}_sum {}",
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e3
        ));
        line(format!("{name}_count {}", self.count.load(Ordering::Relaxed)));
    }
}

/// The server's counter set. All methods take `&self`; everything is
/// relaxed atomics (counters tolerate reorder, they only accumulate).
pub struct Metrics {
    requests: [AtomicU64; 6],
    responses: [AtomicU64; STATUS_CODES.len()],
    responses_other: AtomicU64,
    rejected: AtomicU64,
    slow: AtomicU64,
    /// End-to-end latency (queue wait + service), the historic family.
    latency: Hist,
    /// Time between accept and a worker picking the connection up.
    queue_wait: Hist,
    /// Time between request read and response written.
    service: Hist,
    /// Queue-depth samples taken at every worker pickup: sum and count
    /// give the mean depth *while work was flowing* (the live
    /// `trasyn_queue_depth` gauge only shows the instant of the scrape),
    /// max is the high-water mark.
    queue_depth_sum: AtomicU64,
    queue_depth_samples: AtomicU64,
    queue_depth_max: AtomicU64,
    /// Currently open connections (event core gauge; the thread core
    /// leaves it at 0 — its connections live on worker threads).
    conns_open: AtomicU64,
    /// Requests served on a reused keep-alive connection (every request
    /// past a connection's first).
    keepalive_reuse: AtomicU64,
    /// Connections reaped by timeout: idle keep-alive past
    /// `keepalive_timeout`, or a partial request past the read deadline.
    conn_timeouts: AtomicU64,
    /// Event-loop iterations (`epoll_wait` returns).
    event_loop_iters: AtomicU64,
    /// Event-loop wakeups via the completion eventfd.
    event_wakeups: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: Default::default(),
            responses: Default::default(),
            responses_other: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            latency: Hist::default(),
            queue_wait: Hist::default(),
            service: Hist::default(),
            queue_depth_sum: AtomicU64::new(0),
            queue_depth_samples: AtomicU64::new(0),
            queue_depth_max: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            keepalive_reuse: AtomicU64::new(0),
            conn_timeouts: AtomicU64::new(0),
            event_loop_iters: AtomicU64::new(0),
            event_wakeups: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request: endpoint, response status, and the
    /// two halves of its wall time — queue wait (accept → worker pickup;
    /// `0` past the first request of a keep-alive connection) and
    /// service time (request read → response written). The historic
    /// `trasyn_request_latency_ms` family observes their sum.
    pub fn observe(&self, endpoint: Endpoint, status: u16, queue_wait_ms: f64, service_ms: f64) {
        self.count_unhandled(endpoint, status);
        self.latency.observe(queue_wait_ms + service_ms);
        self.queue_wait.observe(queue_wait_ms);
        self.service.observe(service_ms);
    }

    /// Records a response that was never *handled* (a backpressure shed):
    /// endpoint and status counters only — no latency sample, so the
    /// histogram and [`Metrics::request_count`] keep describing work the
    /// server actually performed.
    pub fn count_unhandled(&self, endpoint: Endpoint, status: u16) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        match STATUS_CODES.iter().position(|&s| s == status) {
            Some(i) => {
                self.responses[i].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.responses_other.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one connection shed by the bounded queue (it also gets a
    /// 429 counted via [`Metrics::count_unhandled`] — this counter
    /// isolates backpressure sheds from other 429 sources).
    pub fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Total rejected connections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Records one request whose total latency crossed the tracer's
    /// slow-request threshold.
    pub fn note_slow(&self) {
        self.slow.fetch_add(1, Ordering::Relaxed);
    }

    /// Total slow requests so far.
    pub fn slow_total(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }

    /// Total observed requests so far.
    pub fn request_count(&self) -> u64 {
        self.latency.count.load(Ordering::Relaxed)
    }

    /// Records one queue-depth sample (taken whenever a worker picks a
    /// connection off the accept queue).
    pub fn sample_queue_depth(&self, depth: usize) {
        let d = depth as u64;
        self.queue_depth_sum.fetch_add(d, Ordering::Relaxed);
        self.queue_depth_samples.fetch_add(1, Ordering::Relaxed);
        self.queue_depth_max.fetch_max(d, Ordering::Relaxed);
    }

    /// One connection accepted into the event core.
    pub fn conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// One event-core connection closed (any reason).
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open event-core connections.
    pub fn conns_open(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// One request served on a reused keep-alive connection.
    pub fn keepalive_reuse(&self) {
        self.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
    }

    /// Total keep-alive reuses so far.
    pub fn keepalive_reuse_total(&self) -> u64 {
        self.keepalive_reuse.load(Ordering::Relaxed)
    }

    /// One connection reaped by an idle or read-deadline timeout.
    pub fn conn_timeout(&self) {
        self.conn_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Total connections reaped by timeout so far.
    pub fn conn_timeouts_total(&self) -> u64 {
        self.conn_timeouts.load(Ordering::Relaxed)
    }

    /// One event-loop iteration (an `epoll_wait` return).
    pub fn event_loop_iter(&self) {
        self.event_loop_iters.fetch_add(1, Ordering::Relaxed);
    }

    /// One eventfd wakeup observed by the event loop.
    pub fn event_wakeup(&self) {
        self.event_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// `(sum, samples, max)` of the queue-depth samples so far.
    pub fn queue_depth_sampled(&self) -> (u64, u64, u64) {
        (
            self.queue_depth_sum.load(Ordering::Relaxed),
            self.queue_depth_samples.load(Ordering::Relaxed),
            self.queue_depth_max.load(Ordering::Relaxed),
        )
    }

    /// Renders the Prometheus text exposition: server counters, the
    /// latency histogram (cumulative, as Prometheus expects), the live
    /// queue depth, and the engine's [`EngineStats`].
    pub fn render(&self, engine: &EngineStats, queue_depth: usize) -> String {
        let mut out = String::with_capacity(2048);
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };

        line("# TYPE trasyn_requests_total counter".into());
        for e in Endpoint::ALL {
            line(format!(
                "trasyn_requests_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.requests[e.index()].load(Ordering::Relaxed)
            ));
        }
        line("# TYPE trasyn_responses_total counter".into());
        for (i, &s) in STATUS_CODES.iter().enumerate() {
            line(format!(
                "trasyn_responses_total{{status=\"{s}\"}} {}",
                self.responses[i].load(Ordering::Relaxed)
            ));
        }
        line(format!(
            "trasyn_responses_total{{status=\"other\"}} {}",
            self.responses_other.load(Ordering::Relaxed)
        ));
        line("# TYPE trasyn_rejected_total counter".into());
        line(format!("trasyn_rejected_total {}", self.rejected()));
        line("# TYPE trasyn_slow_requests_total counter".into());
        line(format!("trasyn_slow_requests_total {}", self.slow_total()));

        self.latency.render("trasyn_request_latency_ms", &mut line);
        self.queue_wait.render("trasyn_queue_wait_ms", &mut line);
        self.service.render("trasyn_service_ms", &mut line);

        line("# TYPE trasyn_queue_depth gauge".into());
        line(format!("trasyn_queue_depth {queue_depth}"));

        line("# TYPE trasyn_cache_hits_total counter".into());
        line(format!("trasyn_cache_hits_total {}", engine.cache.hits));
        line("# TYPE trasyn_cache_misses_total counter".into());
        line(format!("trasyn_cache_misses_total {}", engine.cache.misses));
        line("# TYPE trasyn_cache_insertions_total counter".into());
        line(format!(
            "trasyn_cache_insertions_total {}",
            engine.cache.insertions
        ));
        line("# TYPE trasyn_cache_evictions_total counter".into());
        line(format!(
            "trasyn_cache_evictions_total {}",
            engine.cache.evictions
        ));
        line("# TYPE trasyn_cache_entries gauge".into());
        line(format!("trasyn_cache_entries {}", engine.cache.entries));
        line("# TYPE trasyn_synthesis_threads gauge".into());
        line(format!("trasyn_synthesis_threads {}", engine.threads));
        line("# TYPE trasyn_verify_ok_total counter".into());
        line(format!("trasyn_verify_ok_total {}", engine.verify_ok));
        line("# TYPE trasyn_verify_fail_total counter".into());
        line(format!("trasyn_verify_fail_total {}", engine.verify_fail));
        line("# TYPE trasyn_lint_error_total counter".into());
        line(format!("trasyn_lint_error_total {}", engine.lint_errors));
        line("# TYPE trasyn_lint_warning_total counter".into());
        line(format!("trasyn_lint_warning_total {}", engine.lint_warnings));

        // Per-pass lowering counters (sorted by pass name in EngineStats,
        // so the exposition is stable across request interleavings).
        line("# TYPE trasyn_pass_runs_total counter".into());
        for p in &engine.passes {
            line(format!("trasyn_pass_runs_total{{pass=\"{}\"}} {}", p.name, p.runs));
        }
        line("# TYPE trasyn_pass_wall_ms_total counter".into());
        for p in &engine.passes {
            line(format!(
                "trasyn_pass_wall_ms_total{{pass=\"{}\"}} {}",
                p.name, p.wall_ms
            ));
        }
        line("# TYPE trasyn_pass_rotations_in_total counter".into());
        for p in &engine.passes {
            line(format!(
                "trasyn_pass_rotations_in_total{{pass=\"{}\"}} {}",
                p.name, p.rotations_in
            ));
        }
        line("# TYPE trasyn_pass_rotations_out_total counter".into());
        for p in &engine.passes {
            line(format!(
                "trasyn_pass_rotations_out_total{{pass=\"{}\"}} {}",
                p.name, p.rotations_out
            ));
        }

        // Profiling families (this PR's additions — appended after the
        // historic ones; the whole exposition stays append-only).
        let (qd_sum, qd_samples, qd_max) = self.queue_depth_sampled();
        line("# TYPE trasyn_queue_depth_sampled_sum counter".into());
        line(format!("trasyn_queue_depth_sampled_sum {qd_sum}"));
        line("# TYPE trasyn_queue_depth_samples_total counter".into());
        line(format!("trasyn_queue_depth_samples_total {qd_samples}"));
        line("# TYPE trasyn_queue_depth_max gauge".into());
        line(format!("trasyn_queue_depth_max {qd_max}"));

        let prof = &engine.profile;
        line("# TYPE trasyn_work_total counter".into());
        for (kind, n) in prof.work.entries() {
            line(format!("trasyn_work_total{{kind=\"{kind}\"}} {n}"));
        }

        line("# TYPE trasyn_pool_runs_total counter".into());
        line(format!("trasyn_pool_runs_total {}", prof.pool.runs));
        line("# TYPE trasyn_pool_jobs_total counter".into());
        line(format!("trasyn_pool_jobs_total {}", prof.pool.jobs));
        line("# TYPE trasyn_pool_busy_ms_total counter".into());
        line(format!("trasyn_pool_busy_ms_total {}", prof.pool.busy_ms));
        line("# TYPE trasyn_pool_wall_ms_total counter".into());
        line(format!("trasyn_pool_wall_ms_total {}", prof.pool.wall_ms));
        line("# TYPE trasyn_pool_utilization gauge".into());
        line(format!("trasyn_pool_utilization {}", prof.pool.utilization()));
        line("# TYPE trasyn_pool_workers gauge".into());
        line(format!("trasyn_pool_workers {}", prof.pool.workers.len()));

        line("# TYPE trasyn_alloc_enabled gauge".into());
        line(format!("trasyn_alloc_enabled {}", u8::from(prof.alloc_enabled)));
        line("# TYPE trasyn_phase_allocs_total counter".into());
        for (phase, a) in prof.alloc.phases() {
            line(format!("trasyn_phase_allocs_total{{phase=\"{phase}\"}} {}", a.allocs));
        }
        line("# TYPE trasyn_phase_alloc_bytes_total counter".into());
        for (phase, a) in prof.alloc.phases() {
            line(format!(
                "trasyn_phase_alloc_bytes_total{{phase=\"{phase}\"}} {}",
                a.bytes
            ));
        }
        line("# TYPE trasyn_phase_alloc_peak_bytes gauge".into());
        for (phase, a) in prof.alloc.phases() {
            line(format!(
                "trasyn_phase_alloc_peak_bytes{{phase=\"{phase}\"}} {}",
                a.peak_bytes
            ));
        }

        // Per-shard cache telemetry: entries and evictions only — the
        // age fields are wall-clock dependent and belong to
        // `/debug/profile`, not a deterministic text exposition.
        line("# TYPE trasyn_cache_shard_entries gauge".into());
        for (i, s) in prof.cache_shards.iter().enumerate() {
            line(format!("trasyn_cache_shard_entries{{shard=\"{i}\"}} {}", s.entries));
        }
        line("# TYPE trasyn_cache_shard_evictions_total counter".into());
        for (i, s) in prof.cache_shards.iter().enumerate() {
            line(format!(
                "trasyn_cache_shard_evictions_total{{shard=\"{i}\"}} {}",
                s.evictions
            ));
        }

        // Event-core connection families (appended after the historic
        // ones; the whole exposition stays append-only).
        line("# TYPE trasyn_conns_open gauge".into());
        line(format!("trasyn_conns_open {}", self.conns_open()));
        line("# TYPE trasyn_keepalive_reuse_total counter".into());
        line(format!(
            "trasyn_keepalive_reuse_total {}",
            self.keepalive_reuse_total()
        ));
        line("# TYPE trasyn_conn_timeouts_total counter".into());
        line(format!(
            "trasyn_conn_timeouts_total {}",
            self.conn_timeouts_total()
        ));
        line("# TYPE trasyn_event_loop_iterations_total counter".into());
        line(format!(
            "trasyn_event_loop_iterations_total {}",
            self.event_loop_iters.load(Ordering::Relaxed)
        ));
        line("# TYPE trasyn_event_wakeups_total counter".into());
        line(format!(
            "trasyn_event_wakeups_total {}",
            self.event_wakeups.load(Ordering::Relaxed)
        ));

        // Cache-policy families (appended after the historic ones; the
        // whole exposition stays append-only). The active policy is an
        // info-style gauge — one series, labelled with the policy name —
        // and the per-policy event counters describe what the policy did
        // (zeros for policies without the mechanism, e.g. FIFO).
        line("# TYPE trasyn_cache_policy gauge".into());
        line(format!(
            "trasyn_cache_policy{{policy=\"{}\"}} 1",
            engine.cache_policy.label()
        ));
        line("# TYPE trasyn_cache_policy_promotions_total counter".into());
        line(format!(
            "trasyn_cache_policy_promotions_total {}",
            engine.cache_policy_events.promotions
        ));
        line("# TYPE trasyn_cache_policy_demotions_total counter".into());
        line(format!(
            "trasyn_cache_policy_demotions_total {}",
            engine.cache_policy_events.demotions
        ));
        line("# TYPE trasyn_cache_policy_agings_total counter".into());
        line(format!(
            "trasyn_cache_policy_agings_total {}",
            engine.cache_policy_events.agings
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{
        AllocTotals, BackendKind, CachePolicy, CacheStats, PhaseAllocs, PolicyCounters, PoolTotals,
        ProfileStats, ShardStats, WorkTotals, WorkerTotals,
    };

    fn stats() -> EngineStats {
        let mut fuse = engine::PassTotals::named("fuse");
        fuse.runs = 3;
        fuse.wall_ms = 1.25;
        fuse.rotations_in = 12;
        fuse.rotations_out = 7;
        EngineStats {
            threads: 2,
            backends: vec![BackendKind::Gridsynth],
            cache_capacity: 64,
            cache: CacheStats {
                hits: 5,
                misses: 2,
                insertions: 2,
                evictions: 1,
                entries: 2,
            },
            passes: vec![fuse],
            verify_ok: 6,
            verify_fail: 2,
            lint_errors: 4,
            lint_warnings: 9,
            cache_policy: CachePolicy::TwoQ,
            cache_policy_events: PolicyCounters {
                promotions: 7,
                demotions: 3,
                agings: 0,
            },
            profile: ProfileStats {
                alloc_enabled: true,
                work: WorkTotals {
                    grid_candidates: 40,
                    norm_equations: 30,
                    norm_solutions: 20,
                    exact_syntheses: 10,
                    cache_probes: 7,
                },
                pool: PoolTotals {
                    runs: 2,
                    jobs: 8,
                    wall_ms: 4.0,
                    busy_ms: 6.0,
                    workers: vec![
                        WorkerTotals { busy_ms: 3.0, jobs: 4 },
                        WorkerTotals { busy_ms: 3.0, jobs: 4 },
                    ],
                },
                alloc: PhaseAllocs {
                    lower: AllocTotals { allocs: 11, bytes: 1100, peak_bytes: 512 },
                    synthesis: AllocTotals { allocs: 22, bytes: 2200, peak_bytes: 1024 },
                    splice: AllocTotals { allocs: 3, bytes: 300, peak_bytes: 128 },
                    verify: AllocTotals { allocs: 4, bytes: 400, peak_bytes: 256 },
                },
                cache_shards: vec![
                    ShardStats {
                        entries: 2,
                        evictions: 1,
                        oldest_age_ms: 0.0,
                        last_eviction_age_ms: 0.0,
                    },
                    ShardStats::default(),
                ],
            },
        }
    }

    #[test]
    fn observe_rolls_up_into_render() {
        let m = Metrics::new();
        m.observe(Endpoint::Compile, 200, 0.1, 0.2);
        m.observe(Endpoint::Compile, 200, 1.0, 2.0);
        m.observe(Endpoint::Batch, 400, 10.0, 20.0);
        m.observe(Endpoint::Other, 404, 0.0, 0.1);
        m.reject();
        m.note_slow();
        let text = m.render(&stats(), 3);
        for needle in [
            "trasyn_requests_total{endpoint=\"compile\"} 2",
            "trasyn_requests_total{endpoint=\"batch\"} 1",
            "trasyn_requests_total{endpoint=\"debug\"} 0",
            "trasyn_responses_total{status=\"200\"} 2",
            "trasyn_responses_total{status=\"400\"} 1",
            "trasyn_responses_total{status=\"404\"} 1",
            "trasyn_rejected_total 1",
            "trasyn_slow_requests_total 1",
            "trasyn_request_latency_ms_count 4",
            "trasyn_queue_wait_ms_count 4",
            "trasyn_service_ms_count 4",
            "trasyn_queue_depth 3",
            "trasyn_cache_hits_total 5",
            "trasyn_cache_misses_total 2",
            "trasyn_cache_entries 2",
            "trasyn_synthesis_threads 2",
            "trasyn_verify_ok_total 6",
            "trasyn_verify_fail_total 2",
            "trasyn_lint_error_total 4",
            "trasyn_lint_warning_total 9",
            "trasyn_pass_runs_total{pass=\"fuse\"} 3",
            "trasyn_pass_wall_ms_total{pass=\"fuse\"} 1.25",
            "trasyn_pass_rotations_in_total{pass=\"fuse\"} 12",
            "trasyn_pass_rotations_out_total{pass=\"fuse\"} 7",
            "trasyn_work_total{kind=\"grid_candidates\"} 40",
            "trasyn_work_total{kind=\"cache_probes\"} 7",
            "trasyn_pool_runs_total 2",
            "trasyn_pool_jobs_total 8",
            "trasyn_pool_busy_ms_total 6",
            "trasyn_pool_wall_ms_total 4",
            "trasyn_pool_utilization 0.75",
            "trasyn_pool_workers 2",
            "trasyn_alloc_enabled 1",
            "trasyn_phase_allocs_total{phase=\"synthesis\"} 22",
            "trasyn_phase_alloc_bytes_total{phase=\"lower\"} 1100",
            "trasyn_phase_alloc_peak_bytes{phase=\"verify\"} 256",
            "trasyn_cache_shard_entries{shard=\"0\"} 2",
            "trasyn_cache_shard_entries{shard=\"1\"} 0",
            "trasyn_cache_shard_evictions_total{shard=\"0\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn queue_depth_samples_roll_up() {
        let m = Metrics::new();
        m.sample_queue_depth(3);
        m.sample_queue_depth(5);
        m.sample_queue_depth(1);
        assert_eq!(m.queue_depth_sampled(), (9, 3, 5));
        let text = m.render(&stats(), 0);
        assert!(text.contains("trasyn_queue_depth_sampled_sum 9"), "{text}");
        assert!(text.contains("trasyn_queue_depth_samples_total 3"), "{text}");
        assert!(text.contains("trasyn_queue_depth_max 5"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let m = Metrics::new();
        m.observe(Endpoint::Compile, 200, 0.0, 0.2); // le 0.25
        m.observe(Endpoint::Compile, 200, 0.0, 0.4); // le 0.5
        m.observe(Endpoint::Compile, 200, 0.0, 99_999.0); // +Inf
        let text = m.render(&stats(), 0);
        assert!(text.contains("trasyn_request_latency_ms_bucket{le=\"0.25\"} 1"));
        assert!(text.contains("trasyn_request_latency_ms_bucket{le=\"0.5\"} 2"));
        assert!(text.contains("trasyn_request_latency_ms_bucket{le=\"10000\"} 2"));
        assert!(text.contains("trasyn_request_latency_ms_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn queue_wait_and_service_split_the_total() {
        let m = Metrics::new();
        m.observe(Endpoint::Compile, 200, 2.0, 4.0);
        let text = m.render(&stats(), 0);
        // The historic family keeps observing the end-to-end total.
        assert!(text.contains("trasyn_request_latency_ms_sum 6"), "{text}");
        assert!(text.contains("trasyn_queue_wait_ms_sum 2"), "{text}");
        assert!(text.contains("trasyn_service_ms_sum 4"), "{text}");
        assert!(text.contains("trasyn_queue_wait_ms_bucket{le=\"2.5\"} 1"));
        assert!(text.contains("trasyn_service_ms_bucket{le=\"2.5\"} 0"));
        assert!(text.contains("trasyn_service_ms_bucket{le=\"5\"} 1"));
    }

    #[test]
    fn unknown_status_goes_to_other() {
        let m = Metrics::new();
        m.observe(Endpoint::Compile, 418, 0.0, 1.0);
        let text = m.render(&stats(), 0);
        assert!(text.contains("trasyn_responses_total{status=\"other\"} 1"));
    }

    #[test]
    fn connection_and_event_core_families_render() {
        let m = Metrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.keepalive_reuse();
        m.conn_timeout();
        m.event_loop_iter();
        m.event_wakeup();
        assert_eq!(m.conns_open(), 1);
        assert_eq!(m.keepalive_reuse_total(), 1);
        assert_eq!(m.conn_timeouts_total(), 1);
        let text = m.render(&stats(), 0);
        assert!(text.contains("# TYPE trasyn_conns_open gauge"));
        assert!(text.contains("trasyn_conns_open 1"));
        assert!(text.contains("trasyn_keepalive_reuse_total 1"));
        assert!(text.contains("trasyn_conn_timeouts_total 1"));
        assert!(text.contains("trasyn_event_loop_iterations_total 1"));
        assert!(text.contains("trasyn_event_wakeups_total 1"));
        // Appended after every pre-existing family.
        let idx = text.find("trasyn_conns_open").unwrap();
        assert!(idx > text.find("trasyn_cache_shard_evictions_total").unwrap());
    }

    #[test]
    fn cache_policy_families_render_after_everything_else() {
        let m = Metrics::new();
        let text = m.render(&stats(), 0);
        assert!(text.contains("# TYPE trasyn_cache_policy gauge"));
        assert!(text.contains("trasyn_cache_policy{policy=\"2q\"} 1"));
        assert!(text.contains("trasyn_cache_policy_promotions_total 7"));
        assert!(text.contains("trasyn_cache_policy_demotions_total 3"));
        assert!(text.contains("trasyn_cache_policy_agings_total 0"));
        // Append-only: the policy block comes after the event-core block,
        // the previous tail of the exposition.
        let idx = text.find("trasyn_cache_policy{").unwrap();
        assert!(idx > text.find("trasyn_event_wakeups_total").unwrap());
    }
}
