//! Thin raw-syscall wrappers for the event-driven server core: `epoll`
//! and `eventfd`, Linux-only, dependency-free.
//!
//! The workspace denies `unsafe_code`; this module is the server crate's
//! single `#[allow(unsafe_code)]` island (the same pattern as the `sig`
//! module in `trasyn-server`). Everything unsafe is an `extern "C"`
//! declaration of a libc symbol `std` already links against, wrapped in
//! a safe RAII type that owns its file descriptor; nothing unsafe leaks
//! past this file's API.
//!
//! Nonblocking *sockets* need no syscalls here — `std::net` exposes
//! `set_nonblocking` — so the surface is exactly what `std` lacks:
//! readiness notification (`epoll_create1`/`epoll_ctl`/`epoll_wait`) and
//! a cross-thread wakeup fd (`eventfd`).
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

// SAFETY: these signatures match the Linux libc prototypes (see
// epoll_ctl(2), epoll_wait(2), eventfd(2), read(2), write(2), close(2));
// std already links libc on Linux, so the symbols are always present.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Readiness: data to read (includes peer-closed-with-pending-data).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (reported unsolicited).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (reported unsolicited).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// One readiness event. The kernel's `struct epoll_event` is packed on
/// x86-64 (a historic ABI quirk); other architectures use natural
/// alignment — the `cfg_attr` mirrors libc's definition exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller's token, echoed back verbatim (we store connection
    /// ids, never pointers, so there is no lifetime to get wrong).
    pub data: u64,
}

impl EpollEvent {
    /// Copy out the token (a method because reading a field of a packed
    /// struct by reference is ill-formed; a copy is always fine).
    pub fn token(&self) -> u64 {
        let e = *self;
        e.data
    }

    /// Copy out the readiness bitmask.
    pub fn readiness(&self) -> u32 {
        let e = *self;
        e.events
    }
}

/// An owned epoll instance; the fd is closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; the return is a new fd or -1.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set for `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set (kernels also drop closed fds
    /// automatically; explicit removal keeps the set auditable).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, properly laid-out EpollEvent for the
        // duration of the call; the kernel reads it, never retains it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`,
    /// returning how many are valid. EINTR is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid, writable slice; `maxevents`
            // is its exact length, so the kernel cannot write past it.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own this fd (created in `new`, never duplicated).
        unsafe { close(self.fd) };
    }
}

/// An owned nonblocking `eventfd`: any thread can [`EventFd::notify`] it;
/// the event loop registers it in epoll and [`EventFd::drain`]s on
/// readiness. Closed on drop.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: no pointers involved; the return is a new fd or -1.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any epoll waiting on readability.
    /// Best-effort: an EAGAIN (counter saturated) still leaves the fd
    /// readable, which is all a wakeup needs.
    pub fn notify(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live u64, as eventfd(2)
        // requires.
        let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Resets the counter to zero (nonblocking; EAGAIN means it already
    /// was). Call once per readiness event — wakeups are coalesced.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live 8-byte buffer.
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own this fd (created in `new`, never duplicated).
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.notify();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Drained: level-triggered readiness goes away.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no pending accept yet");

        let _client = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // modify + delete round-trip.
        ep.modify(listener.as_raw_fd(), EPOLLIN | EPOLLOUT, 43).unwrap();
        ep.delete(listener.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "deleted fd reports nothing");
    }
}
