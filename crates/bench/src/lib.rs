//! Criterion benchmarks live in `benches/`:
//!
//! * `synthesis` — per-method synthesis latency (Figure 8's timing data
//!   and Table 1 / Figure 7 workloads);
//! * `substrates` — step-0 enumeration, MPS sampling, gridsynth stages;
//! * `circuits` — transpile settings (Figures 3/6), circuit synthesis
//!   (Figures 2/10), phase folding (Figure 14), simulators (Figures 9/13).
