//! Compilation-service performance: shared-cache hit throughput and
//! worker-pool thread scaling.
//!
//! The cold-compile groups clear (or rebuild) the cache every iteration,
//! so they measure real synthesis fanned out over the pool; the warm
//! group measures the service's steady state, where every rotation is a
//! cache hit and compilation reduces to lookups + splicing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{BackendKind, Engine, GridsynthBackend};
use std::time::Duration;
use workloads::random::haar_targets;

/// A QAOA-like workload: layered repeated angles plus a few distinct
/// Haar rotations so the cache sees both hits and misses.
fn workload() -> circuit::Circuit {
    let mut c = workloads::qaoa::random_qaoa(8, 3, 0xBE7C);
    for (i, u) in haar_targets(6, 7).iter().enumerate() {
        // Inject distinct arbitrary rotations via their Euler angles.
        let d = qmath::euler::decompose_u3(u);
        c.u3(i % 8, d.theta, d.phi, d.lambda);
    }
    c
}

fn engine_with(threads: usize) -> Engine {
    Engine::builder()
        .threads(threads)
        .cache_capacity(1 << 14)
        .backend(GridsynthBackend::default())
        .build()
}

/// Steady state: every distinct rotation is already cached; throughput is
/// bounded by lookups and splicing, not synthesis.
fn bench_cache_hits(c: &mut Criterion) {
    let circuit = workload();
    let eng = engine_with(1);
    let warm = eng.compile(&circuit, BackendKind::Gridsynth, 1e-3).unwrap();
    assert!(warm.cache_misses > 0);
    let mut g = c.benchmark_group("engine_cache_hit");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    g.bench_function("compile_warm", |b| {
        b.iter(|| {
            let r = eng.compile(&circuit, BackendKind::Gridsynth, 1e-3).unwrap();
            assert_eq!(r.cache_misses, 0);
            std::hint::black_box(r.t_count)
        });
    });
    g.finish();
}

/// Cold compiles at several pool widths: the distinct rotations are
/// synthesized in parallel, output identical at every width.
fn bench_thread_scaling(c: &mut Criterion) {
    let circuit = workload();
    let mut g = c.benchmark_group("engine_threads");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for threads in [1usize, 2, 4] {
        let eng = engine_with(threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                eng.cache().clear();
                let r = eng.compile(&circuit, BackendKind::Gridsynth, 1e-3).unwrap();
                std::hint::black_box(r.t_count)
            });
        });
    }
    g.finish();
}

/// Snapshot persistence: encode/decode cost of a warmed cache — the
/// boot-time price of a warm start and the shutdown price of saving.
fn bench_snapshot(c: &mut Criterion) {
    let circuit = workload();
    let eng = engine_with(1);
    eng.compile(&circuit, BackendKind::Gridsynth, 1e-3).unwrap();
    let entries = eng.cache().len();
    assert!(entries > 0);
    let bytes = engine::snapshot::encode(eng.cache());
    let mut g = c.benchmark_group("engine_snapshot");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    g.bench_function(BenchmarkId::new("encode", entries), |b| {
        b.iter(|| std::hint::black_box(engine::snapshot::encode(eng.cache()).len()));
    });
    g.bench_function(BenchmarkId::new("decode", entries), |b| {
        b.iter(|| {
            let decoded = engine::snapshot::decode(&bytes).unwrap();
            std::hint::black_box(decoded.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache_hits, bench_thread_scaling, bench_snapshot);
criterion_main!(benches);
