//! Circuit-level benchmarks: transpile settings (Figures 3/6), workflow
//! synthesis (Figures 2/10/12), phase folding (Figure 14), simulators
//! (Figures 9/11/13).

use circuit::levels::{transpile, Basis, TranspileSetting};
use circuit::pass::{PipelineSpec, Preset};
use circuit::synthesize::synthesize_circuit;
use criterion::{criterion_group, criterion_main, Criterion};
use engine::build_pipeline;
use gates::GateSeq;
use qmath::Mat2;
use sim::density::DensityMatrix;
use sim::noise::{NoiseModel, NoiseTarget};
use sim::statevector::State;
use std::time::Duration;
use workloads::qaoa::random_qaoa;

/// Figures 3/6: the 16 transpile settings on a QAOA circuit.
fn bench_transpile(c: &mut Criterion) {
    let qaoa = random_qaoa(10, 3, 7);
    let mut g = c.benchmark_group("fig6_transpile");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("all_16_settings", |b| {
        b.iter(|| {
            for s in TranspileSetting::all() {
                std::hint::black_box(transpile(&qaoa, s));
            }
        });
    });
    g.bench_function("u3_level3_commute", |b| {
        b.iter(|| {
            std::hint::black_box(transpile(
                &qaoa,
                TranspileSetting {
                    basis: Basis::U3,
                    level: 3,
                    commutation: true,
                },
            ))
        });
    });
    g.finish();
}

/// The lowering pass pipeline: per-preset end-to-end cost and per-pass
/// cost on suite circuits (a QAOA kernel and a trotterized classical
/// Ising Hamiltonian, the shapes the paper's transpile study sweeps).
fn bench_pipeline(c: &mut Criterion) {
    let qaoa = random_qaoa(10, 3, 7);
    let ising = workloads::hamiltonian::trotter_circuit(
        &workloads::hamiltonian::random_ising(8, 0.5, 0xBE),
        2,
        0.37,
    );
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for preset in Preset::ALL {
        if preset == Preset::None {
            continue; // nothing to measure
        }
        let spec = PipelineSpec::Preset(preset);
        g.bench_function(format!("preset_{}_qaoa10", preset.label()), |b| {
            b.iter(|| {
                let mut work = qaoa.clone();
                std::hint::black_box(build_pipeline(&spec, Basis::U3).run(&mut work));
                work
            });
        });
    }
    // Per-pass cost, isolated, on the diagonal Ising workload (the shape
    // where zx-fold does real work).
    for pass in ["commute", "fuse", "cx-cancel", "basis=rz", "zx-fold"] {
        let spec = PipelineSpec::parse(pass).expect("known pass");
        g.bench_function(format!("pass_{pass}_ising8"), |b| {
            b.iter(|| {
                let mut work = ising.clone();
                std::hint::black_box(build_pipeline(&spec, Basis::Rz).run(&mut work));
                work
            });
        });
    }
    // Pipeline-object reuse: the buffer-recycling path the engine takes
    // for every batch item.
    let spec = PipelineSpec::Preset(Preset::Default);
    g.bench_function("preset_default_qaoa10_reused", |b| {
        let mut pipe = build_pipeline(&spec, Basis::U3);
        let mut work = qaoa.clone();
        b.iter(|| {
            work.copy_from(&qaoa);
            std::hint::black_box(pipe.run(&mut work));
        });
    });
    g.finish();
}

/// Figures 2/10: circuit-wide rotation replacement machinery (with a stub
/// synthesizer so the pass overhead itself is visible).
fn bench_circuit_synthesis(c: &mut Criterion) {
    let qaoa = random_qaoa(10, 3, 7);
    let lowered = transpile(
        &qaoa,
        TranspileSetting {
            basis: Basis::Rz,
            level: 3,
            commutation: false,
        },
    );
    let mut g = c.benchmark_group("fig10_circuit_pass");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("synthesize_circuit_overhead", |b| {
        b.iter(|| {
            std::hint::black_box(synthesize_circuit(&lowered, |_m: &Mat2| {
                (
                    [gates::Gate::T, gates::Gate::H].into_iter().collect::<GateSeq>(),
                    1e-3,
                )
            }))
        });
    });
    g.finish();
}

/// Figure 14: phase folding on a synthesized-style circuit.
fn bench_phasefold(c: &mut Criterion) {
    // A discrete circuit with fold opportunities.
    let mut circ = circuit::Circuit::new(6);
    for layer in 0..40 {
        for q in 0..6usize {
            circ.gate(q, if layer % 2 == 0 { gates::Gate::T } else { gates::Gate::S });
        }
        for q in 0..5usize {
            circ.cx(q, q + 1);
        }
        if layer % 5 == 4 {
            circ.h(layer % 6);
        }
    }
    let mut g = c.benchmark_group("fig14_phasefold");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("optimize_1440_gates", |b| {
        b.iter(|| std::hint::black_box(zxopt::optimize(&circ)));
    });
    g.finish();
}

/// Figures 9/11/13: simulator throughput.
fn bench_simulators(c: &mut Criterion) {
    let qaoa = random_qaoa(10, 2, 5);
    let mut g = c.benchmark_group("fig13_simulators");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("statevector_10q_qaoa", |b| {
        b.iter(|| {
            let mut s = State::zero(10);
            s.apply_circuit(&qaoa);
            std::hint::black_box(s.norm_sqr())
        });
    });
    let small = random_qaoa(6, 1, 5);
    let lowered = transpile(
        &small,
        TranspileSetting {
            basis: Basis::U3,
            level: 1,
            commutation: false,
        },
    );
    let discrete = synthesize_circuit(&lowered, |_m: &Mat2| {
        (
            [gates::Gate::H, gates::Gate::T, gates::Gate::H]
                .into_iter()
                .collect::<GateSeq>(),
            1e-2,
        )
    });
    g.bench_function("density_6q_noisy", |b| {
        let model = NoiseModel {
            rate: 1e-4,
            target: NoiseTarget::NonPauliGates,
        };
        b.iter(|| {
            let mut rho = DensityMatrix::zero(6);
            rho.apply_noisy_circuit(&discrete.circuit, &model);
            std::hint::black_box(rho.trace())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_transpile,
    bench_pipeline,
    bench_circuit_synthesis,
    bench_phasefold,
    bench_simulators
);
criterion_main!(benches);
