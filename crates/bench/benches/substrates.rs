//! Substrate micro-benchmarks: step-0 enumeration, MPS sampling, and the
//! gridsynth stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsynth::diophantine::solve_norm_equation;
use gridsynth::exact_synth::exact_synthesize;
use gridsynth::grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rings::ZRoot2;
use std::sync::OnceLock;
use std::time::Duration;
use trasyn::mps::TraceMps;
use trasyn::sample::sample_sequences;
use trasyn::UnitaryTable;

fn table() -> &'static UnitaryTable {
    static CELL: OnceLock<UnitaryTable> = OnceLock::new();
    CELL.get_or_init(|| UnitaryTable::build(6))
}

/// Step-0 enumeration cost (paper §3.3: `O(4^#T)` — one-time).
fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("step0_enumeration");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for t in [3usize, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| std::hint::black_box(UnitaryTable::build(t)));
        });
    }
    g.finish();
}

/// Step 1+2: MPS environment build and sampling throughput.
fn bench_sampling(c: &mut Criterion) {
    let table = table();
    let mut g = c.benchmark_group("step2_sampling");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let u = qmath::Mat2::u3(0.73, -0.2, 1.1);
    for k in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mps = TraceMps::new(table, &[6, 6]);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| std::hint::black_box(sample_sequences(&mps, &u, k, &mut rng)));
        });
    }
    g.finish();
}

/// gridsynth stages: grid candidates, Diophantine, exact synthesis.
fn bench_gridsynth_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("gridsynth_stages");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("grid_candidates_k20", |b| {
        b.iter(|| std::hint::black_box(grid::candidates(0.937, 1e-2, 20, 16)));
    });
    g.bench_function("diophantine", |b| {
        let mut k = 0i128;
        b.iter(|| {
            k += 1;
            // A family of doubly-positive values.
            let xi = ZRoot2::new(40 + (k % 17), 3 + (k % 5));
            std::hint::black_box(solve_norm_equation(xi))
        });
    });
    g.bench_function("exact_synthesis_t20", |b| {
        use gates::{ExactMat2, Gate, GateSeq};
        let seq: GateSeq = (0..60)
            .map(|i| match i % 3 {
                0 => Gate::H,
                1 => Gate::T,
                _ => Gate::S,
            })
            .collect();
        let m = ExactMat2::from_seq(&seq);
        b.iter(|| std::hint::black_box(exact_synthesize(m)));
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration, bench_sampling, bench_gridsynth_stages);
criterion_main!(benches);
