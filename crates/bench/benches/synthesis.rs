//! Per-method single-unitary synthesis latency — the timing data behind
//! Figure 8 and the workload of Table 1 / Figure 7.

use baselines::{anneal_synthesize, AnnealConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsynth::{synthesize_rz, synthesize_u3};
use std::sync::OnceLock;
use std::time::Duration;
use trasyn::{SynthesisConfig, Trasyn};
use workloads::random::haar_targets;

fn synthesizer() -> &'static Trasyn {
    static CELL: OnceLock<Trasyn> = OnceLock::new();
    CELL.get_or_init(|| Trasyn::new(6))
}

/// Figure 8: trasyn synthesis time at the three scales (1/2/3 tensors).
fn bench_trasyn_scales(c: &mut Criterion) {
    let synth = synthesizer();
    let targets = haar_targets(8, 1);
    let mut g = c.benchmark_group("fig8_trasyn");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for tensors in [1usize, 2, 3] {
        g.bench_with_input(
            BenchmarkId::from_parameter(tensors),
            &tensors,
            |b, &tensors| {
                let mut i = 0usize;
                b.iter(|| {
                    let u = &targets[i % targets.len()];
                    i += 1;
                    let cfg = SynthesisConfig {
                        samples: 512,
                        budgets: vec![6; tensors],
                        min_tensors: tensors,
                        ..Default::default()
                    };
                    std::hint::black_box(synth.synthesize(u, &cfg))
                });
            },
        );
    }
    g.finish();
}

/// Figure 8: gridsynth Rz synthesis time at the three error scales.
fn bench_gridsynth_eps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_gridsynth_rz");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for eps in [1e-1f64, 1e-2, 1e-3] {
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let mut k = 0u32;
            b.iter(|| {
                k = k.wrapping_add(1);
                let theta = 0.1 + (k % 31) as f64 * 0.07;
                std::hint::black_box(synthesize_rz(theta, eps))
            });
        });
    }
    g.finish();
}

/// Table 1 workload: the full gridsynth U3 (three-Rz) pipeline.
fn bench_gridsynth_u3(c: &mut Criterion) {
    let targets = haar_targets(8, 2);
    let mut g = c.benchmark_group("table1_gridsynth_u3");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("eps_1e-2", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let u = &targets[i % targets.len()];
            i += 1;
            std::hint::black_box(synthesize_u3(u, 1e-2))
        });
    });
    g.finish();
}

/// Figure 7's Synthetiq point: annealing with a bounded budget.
fn bench_annealer(c: &mut Criterion) {
    let targets = haar_targets(4, 3);
    let mut g = c.benchmark_group("fig7_synthetiq");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("eps_1e-1", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let u = &targets[i % targets.len()];
            i += 1;
            std::hint::black_box(anneal_synthesize(
                u,
                &AnnealConfig {
                    epsilon: 1e-1,
                    max_iters: 5_000,
                    restarts: 2,
                    ..Default::default()
                },
            ))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trasyn_scales,
    bench_gridsynth_eps,
    bench_gridsynth_u3,
    bench_annealer
);
criterion_main!(benches);
