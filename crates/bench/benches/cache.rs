//! Cache eviction-policy hit-path overhead.
//!
//! Every policy pays a per-access bookkeeping cost on the hot (cache-hit)
//! path: FIFO nothing, LRU a recency touch, 2Q a queue lookup and
//! possible promotion, Freq a count-min sketch update. This group pins
//! that overhead against the FIFO baseline by compiling a fully warm
//! workload — every rotation is a hit, so the measured work is lookups,
//! policy bookkeeping, and splicing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{BackendKind, CachePolicy, Engine, GridsynthBackend};
use std::time::Duration;
use workloads::random::haar_targets;

/// The same QAOA-like mix the engine benches use: repeated layered
/// angles plus a few distinct Haar rotations.
fn workload() -> circuit::Circuit {
    let mut c = workloads::qaoa::random_qaoa(8, 3, 0xBE7C);
    for (i, u) in haar_targets(6, 7).iter().enumerate() {
        let d = qmath::euler::decompose_u3(u);
        c.u3(i % 8, d.theta, d.phi, d.lambda);
    }
    c
}

fn bench_policy_hit_path(c: &mut Criterion) {
    let circuit = workload();
    let mut g = c.benchmark_group("cache_policy_hit");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    for policy in CachePolicy::ALL {
        let eng = Engine::builder()
            .threads(1)
            .cache_capacity(1 << 14)
            .cache_policy(policy)
            .backend(GridsynthBackend::default())
            .build();
        let warm = eng.compile(&circuit, BackendKind::Gridsynth, 1e-3).unwrap();
        assert!(warm.cache_misses > 0);
        g.bench_function(BenchmarkId::from_parameter(policy.label()), |b| {
            b.iter(|| {
                let r = eng.compile(&circuit, BackendKind::Gridsynth, 1e-3).unwrap();
                assert_eq!(r.cache_misses, 0);
                std::hint::black_box(r.t_count)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policy_hit_path);
criterion_main!(benches);
