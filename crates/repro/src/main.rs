//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--full] [--out DIR]
//!
//! experiments:
//!   table1  table2
//!   fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!   all     (everything; hours at --full scale)
//! ```
//!
//! Default parameters are scaled for a single-core CPU run (see
//! DESIGN.md §7); `--full` restores paper-scale parameters where
//! feasible. Each experiment prints its table/series and writes a CSV
//! under `results/`.

mod context;
mod exp_ablation;
mod exp_baselines;
mod exp_circuits;
mod exp_noise;
mod exp_rotations;
mod exp_single;
mod exp_tradeoff;
mod exp_zx;
mod util;

use context::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_pos = args.iter().position(|a| a == "--out");
    let outdir = out_pos
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let cmd = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && Some(*i) != out_pos.map(|p| p + 1)).map_or_else(|| "help".to_string(), |(_, a)| a.clone());

    if cmd == "help" {
        eprintln!(
            "usage: repro <table1|table2|fig2|fig3|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|all> [--full] [--out DIR]"
        );
        return;
    }

    std::fs::create_dir_all(&outdir).expect("create output directory");
    let ctx = Ctx::new(full, outdir);

    let run = |name: &str, ctx: &Ctx| match name {
        "table1" => exp_single::table1(ctx),
        "table2" => exp_rotations::table2(ctx),
        "fig2" => exp_circuits::fig2(ctx),
        "fig3" => exp_rotations::fig3(ctx),
        "fig6" => exp_rotations::fig6(ctx),
        "fig7" => exp_single::fig7(ctx),
        "fig8" => exp_single::fig8(ctx),
        "fig9" => exp_tradeoff::fig9(ctx),
        "fig10" => exp_circuits::fig10(ctx),
        "fig11" => exp_circuits::fig11(ctx),
        "fig12" => exp_baselines::fig12(ctx),
        "fig13" => exp_noise::fig13(ctx),
        "fig14" => exp_zx::fig14(ctx),
        "ablation" => exp_ablation::ablation(ctx),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };

    if cmd == "all" {
        for name in [
            "table2", "fig3", "fig6", "table1", "fig7", "fig8", "fig9", "fig2", "fig10",
            "fig11", "fig12", "fig13", "fig14", "ablation",
        ] {
            println!("\n================== {name} ==================");
            run(name, &ctx);
        }
    } else {
        run(&cmd, &ctx);
    }
}
