//! Ablations of trasyn's design choices (DESIGN.md §6; supports the
//! paper's Figure 1 claims).
//!
//! 1. **Error-aware vs uniform sampling** — the MPS samples sequences
//!    with probability ∝ |trace|²; the ablation replaces this with
//!    uniform index choices and compares the best error found per sample
//!    budget (Figure 1(b): "error-aware sampling … delivering efficiency
//!    and accuracy").
//! 2. **Step-3 peephole contribution** — T/Clifford counts with and
//!    without the equivalence-table replacement.
//! 3. **Tensor-count scaling** — error vs number of tensors at a fixed
//!    total sample budget (the scalability mechanism of step 1).

use crate::context::Ctx;
use crate::util::{geomean, mean, write_csv};
use gates::GateSeq;
use qmath::distance::unitary_distance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trasyn::mps::TraceMps;
use trasyn::sample::sample_sequences;
use trasyn::SynthesisConfig;
use workloads::random::haar_targets;

/// Runs all three ablations.
pub fn ablation(ctx: &Ctx) {
    sampling_ablation(ctx);
    peephole_ablation(ctx);
    tensor_scaling(ctx);
}

fn sampling_ablation(ctx: &Ctx) {
    let targets = haar_targets(12, 0xAB1A);
    let budgets = [ctx.budget(), ctx.budget()];
    let k = 512usize;
    let mut aware_best = Vec::new();
    let mut uniform_best = Vec::new();
    let mut rows = Vec::new();
    for (i, u) in targets.iter().enumerate() {
        let mps = TraceMps::new(ctx.trasyn.table(), &budgets);
        let mut rng = StdRng::seed_from_u64(0x1111 + i as u64);
        // Error-aware (the real step 2).
        let aware = sample_sequences(&mps, u, k, &mut rng)
            .iter()
            .map(|o| o.error())
            .fold(f64::INFINITY, f64::min);
        // Uniform ablation: k uniform index tuples.
        let mut uni = f64::INFINITY;
        for _ in 0..k {
            let a = rng.gen_range(0..mps.sites[0].len());
            let b = rng.gen_range(0..mps.sites[1].len());
            let m = mps.sites[0][a].matrix * mps.sites[1][b].matrix;
            uni = uni.min(unitary_distance(u, &m));
        }
        aware_best.push(aware);
        uniform_best.push(uni);
        rows.push(format!("{i},{aware:.6e},{uni:.6e}"));
    }
    println!("Ablation 1: error-aware vs uniform sampling (k = {k}, 2 tensors)");
    println!(
        "  best error per target: aware geomean {:.2e}  uniform geomean {:.2e}  ({:.1}x better)",
        geomean(&aware_best),
        geomean(&uniform_best),
        geomean(&uniform_best) / geomean(&aware_best)
    );
    write_csv(
        &ctx.out("ablation_sampling.csv"),
        "idx,error_aware_best,uniform_best",
        &rows,
    );
}

fn peephole_ablation(ctx: &Ctx) {
    let targets = haar_targets(12, 0xAB1B);
    let mut with_t = Vec::new();
    let mut without_t = Vec::new();
    let mut with_cl = Vec::new();
    let mut without_cl = Vec::new();
    let mut rows = Vec::new();
    for (i, u) in targets.iter().enumerate() {
        let mps = TraceMps::new(ctx.trasyn.table(), &[ctx.budget(), ctx.budget()]);
        let mut rng = StdRng::seed_from_u64(0x2222 + i as u64);
        let outcomes = sample_sequences(&mps, u, 512, &mut rng);
        let best = outcomes
            .iter()
            .min_by(|a, b| a.error().total_cmp(&b.error()))
            .expect("samples");
        let mut raw = GateSeq::new();
        for (site, &idx) in mps.sites.iter().zip(best.indices.iter()) {
            raw.extend_seq(&site[idx].seq);
        }
        let opt = trasyn::peephole::optimize(&raw, ctx.trasyn.table());
        without_t.push(raw.t_count() as f64);
        with_t.push(opt.t_count() as f64);
        without_cl.push(raw.clifford_count() as f64);
        with_cl.push(opt.clifford_count() as f64);
        rows.push(format!(
            "{i},{},{},{},{}",
            raw.t_count(),
            opt.t_count(),
            raw.clifford_count(),
            opt.clifford_count()
        ));
    }
    println!("Ablation 2: step-3 peephole contribution");
    println!(
        "  mean T: {:.1} -> {:.1}   mean Clifford: {:.1} -> {:.1}",
        mean(&without_t),
        mean(&with_t),
        mean(&without_cl),
        mean(&with_cl)
    );
    write_csv(
        &ctx.out("ablation_peephole.csv"),
        "idx,t_before,t_after,clifford_before,clifford_after",
        &rows,
    );
}

fn tensor_scaling(ctx: &Ctx) {
    let targets = haar_targets(8, 0xAB1C);
    let mut rows = Vec::new();
    println!("Ablation 3: error vs tensor count (fixed samples = {})", ctx.samples());
    for tensors in 1..=3usize {
        let mut errs = Vec::new();
        for (i, u) in targets.iter().enumerate() {
            let out = ctx.trasyn.synthesize(
                u,
                &SynthesisConfig {
                    samples: ctx.samples(),
                    budgets: vec![ctx.budget(); tensors],
                    min_tensors: tensors,
                    seed: 0x3333 + i as u64,
                    ..Default::default()
                },
            );
            errs.push(out.error);
        }
        println!("  {tensors} tensor(s): geomean error {:.2e}", geomean(&errs));
        rows.push(format!("{tensors},{:.6e}", geomean(&errs)));
    }
    write_csv(
        &ctx.out("ablation_tensors.csv"),
        "tensors,geomean_error",
        &rows,
    );
}
