//! RQ4 / Figure 13: circuit infidelity ratios under logical errors.

use crate::context::Ctx;
use crate::exp_circuits::{noisy_infidelity, run_both};
use crate::util::{geomean, write_csv};
use workloads::BenchmarkCircuit;

/// Figure 13: infidelity ratio (gridsynth / trasyn) for small circuits
/// under depolarizing logical error rates.
///
/// The paper derives per-rate synthesis thresholds from the Figure 9 law
/// (`1.22·√λ`: 0.0122 / 0.00386 / 0.00122 for λ = 1e-4/1e-5/1e-6); the
/// CPU-scaled trasyn bottoms out near 1e-2, so thresholds are clamped
/// there by default (`--full` uses the law's values down to 4e-3).
pub fn fig13(ctx: &Ctx) {
    let circuits: Vec<BenchmarkCircuit> = ctx
        .circuits()
        .into_iter()
        .filter(|b| b.circuit.n_qubits() <= 6)
        .collect();
    let rates = [1e-4f64, 1e-5, 1e-6];
    let floor = if ctx.full { 4e-3 } else { 1e-2 };
    let mut rows = Vec::new();
    println!(
        "Figure 13: infidelity ratio gridsynth/trasyn, {} small circuits",
        circuits.len()
    );
    for &ler in &rates {
        let eps = (1.22 * ler.sqrt()).max(floor);
        let mut ratios = Vec::new();
        for (i, b) in circuits.iter().enumerate() {
            eprint!("\r[fig13 λ={ler:.0e}] {}/{} {:<28}", i + 1, circuits.len(), b.name);
            let pair = run_both(ctx, b, eps);
            let fi_u3 = noisy_infidelity(&pair.original, &pair.u3.circuit, ler);
            let fi_rz = noisy_infidelity(&pair.original, &pair.rz.circuit, ler);
            let r = fi_rz / fi_u3.max(1e-15);
            ratios.push(r);
            rows.push(format!("{},{ler:.0e},{eps:.4e},{r:.4}", b.name));
        }
        eprintln!();
        println!(
            "  LER {ler:.0e} (eps {eps:.3e}): infidelity ratio geomean {:.2}x",
            geomean(&ratios)
        );
    }
    println!("  (paper: ratios 1–4x, consistent across rates)");
    write_csv(
        &ctx.out("fig13_noise_ratio.csv"),
        "benchmark,logical_error_rate,synthesis_eps,infidelity_ratio",
        &rows,
    );
}
