//! Shared experiment context: the trasyn synthesizer, workflow wrappers,
//! and the scaled-vs-full parameter sets.

use circuit::levels::{best_for_basis, Basis};
use circuit::metrics::rotation_count;
use circuit::synthesize::{synthesize_circuit, SynthesizedCircuit};
use circuit::Circuit;
use gridsynth::{synthesize_rz_with, synthesize_u3_with, RzOptions};
use qmath::Mat2;
use std::path::PathBuf;
use trasyn::{SynthesisConfig, Synthesized, Trasyn};

/// Experiment context.
pub struct Ctx {
    /// The trasyn synthesizer with its step-0 table.
    pub trasyn: Trasyn,
    /// Whether paper-scale parameters were requested.
    pub full: bool,
    /// Output directory for CSVs.
    pub outdir: PathBuf,
}

impl Ctx {
    /// Builds the context (this runs the step-0 enumeration once).
    pub fn new(full: bool, outdir: String) -> Self {
        let max_t = if full { 8 } else { 7 };
        eprintln!("[setup] building trasyn table (max_t = {max_t}) ...");
        let t0 = std::time::Instant::now();
        let trasyn = Trasyn::new(max_t);
        eprintln!(
            "[setup] table ready: {} unique matrices in {:.1}s",
            trasyn.table().len(),
            t0.elapsed().as_secs_f64()
        );
        Ctx {
            trasyn,
            full,
            outdir: PathBuf::from(outdir),
        }
    }

    /// Output path helper.
    pub fn out(&self, name: &str) -> PathBuf {
        self.outdir.join(name)
    }

    /// Number of RQ1 Haar targets (paper: 1000).
    pub fn n_unitaries(&self) -> usize {
        if self.full {
            1000
        } else {
            60
        }
    }

    /// Samples per trasyn pass (paper: 40 000 on an A100).
    pub fn samples(&self) -> usize {
        if self.full {
            8192
        } else {
            1024
        }
    }

    /// Per-tensor T budget for trasyn.
    pub fn budget(&self) -> usize {
        self.trasyn.table().max_t()
    }

    /// The benchmark circuits used by circuit-level experiments: all 187
    /// under `--full`, else a representative subset capped by distinct
    /// rotations.
    pub fn circuits(&self) -> Vec<workloads::BenchmarkCircuit> {
        let suite = workloads::benchmark_suite();
        if self.full {
            return suite;
        }
        // Representative subset: per category, smallest-first until 12.
        let mut out = Vec::new();
        for cat in [
            workloads::Category::Qaoa,
            workloads::Category::QuantumHamiltonian,
            workloads::Category::ClassicalHamiltonian,
            workloads::Category::FtAlgorithm,
        ] {
            let mut cs: Vec<workloads::BenchmarkCircuit> = suite
                .iter()
                .filter(|b| b.category == cat)
                .cloned()
                .collect();
            cs.sort_by_key(|b| rotation_count(&b.circuit));
            out.extend(cs.into_iter().take(12));
        }
        out
    }

    /// The trasyn (U3) workflow on a circuit: best U3 transpile setting,
    /// then direct synthesis of every rotation with error threshold
    /// `eps_rot` per rotation. Returns the lowered circuit and synthesis
    /// output.
    pub fn u3_workflow(&self, c: &Circuit, eps_rot: f64) -> (Circuit, SynthesizedCircuit) {
        let (_, _, lowered) = best_for_basis(c, Basis::U3);
        let cfg = SynthesisConfig {
            samples: self.samples(),
            budgets: vec![self.budget(); 3],
            min_tensors: 1,
            epsilon: Some(eps_rot),
            attempts: 1,
            seed: 0xBEEF,
        };
        let synth = synthesize_circuit(&lowered, |m: &Mat2| {
            let out: Synthesized = self.trasyn.synthesize(m, &cfg);
            (out.seq, out.error)
        });
        (lowered, synth)
    }

    /// The gridsynth (Rz) workflow: best Rz transpile setting, then
    /// Ross–Selinger synthesis of every rotation. `eps_rot` is the
    /// *per-rotation* error threshold (callers scale it by the rotation
    /// ratio to match circuit-level error budgets, §4.3).
    pub fn rz_workflow(&self, c: &Circuit, eps_rot: f64) -> (Circuit, SynthesizedCircuit) {
        let (_, _, lowered) = best_for_basis(c, Basis::Rz);
        let opts = RzOptions::default();
        let synth = synthesize_circuit(&lowered, |m: &Mat2| {
            // Rotations in the Rz basis are diagonal: recover the angle.
            let angle = rz_angle_of(m);
            match angle {
                Some(theta) => {
                    let r = synthesize_rz_with(theta, eps_rot, opts)
                        .expect("gridsynth converges for eps >= 1e-7");
                    (r.seq, r.error)
                }
                None => {
                    // Non-diagonal residue (shouldn't happen in Rz basis):
                    // fall back to the three-Rz U3 synthesis.
                    let r = synthesize_u3_with(m, eps_rot * 3.0, opts)
                        .expect("gridsynth u3 converges");
                    (r.seq, r.error)
                }
            }
        });
        (lowered, synth)
    }
}

/// If `m` is diagonal (up to phase), returns the `Rz` angle; else `None`.
pub fn rz_angle_of(m: &Mat2) -> Option<f64> {
    if m.e[1].abs() > 1e-9 || m.e[2].abs() > 1e-9 {
        return None;
    }
    // m = e^{iα}·diag(e^{-iθ/2}, e^{iθ/2}).
    Some((m.e[3] / m.e[0]).arg())
}
