//! Shared experiment context: the compilation engine, workflow wrappers,
//! and the scaled-vs-full parameter sets.
//!
//! All circuit-level experiments compile through the [`engine::Engine`]
//! service: distinct rotations are synthesized on a worker pool and
//! memoized in a process-wide cache, so figures that revisit the same
//! benchmarks (fig2 and fig10 run the same workflow pairs) amortize each
//! other's synthesis work. Engine compilation is
//! bit-identical to the sequential path at any thread count, so results
//! are unchanged from the pre-engine driver.

use circuit::levels::{best_for_basis, Basis};
use circuit::metrics::rotation_count;
use circuit::synthesize::SynthesizedCircuit;
use circuit::Circuit;
use engine::{BackendKind, Engine, GridsynthBackend, TrasynBackend};
pub use engine::rz_angle_of;
use std::path::PathBuf;
use std::sync::Arc;
use trasyn::{SynthesisConfig, Trasyn};

/// Experiment context.
pub struct Ctx {
    /// The trasyn synthesizer with its step-0 table (shared with the
    /// engine's trasyn backend).
    pub trasyn: Arc<Trasyn>,
    /// The compilation service all circuit-level workflows run through.
    pub engine: Engine,
    /// Whether paper-scale parameters were requested.
    pub full: bool,
    /// Output directory for CSVs.
    pub outdir: PathBuf,
}

impl Ctx {
    /// Builds the context (this runs the step-0 enumeration once).
    pub fn new(full: bool, outdir: String) -> Self {
        let max_t = if full { 8 } else { 7 };
        eprintln!("[setup] building trasyn table (max_t = {max_t}) ...");
        let t0 = std::time::Instant::now();
        let trasyn = Arc::new(Trasyn::new(max_t));
        eprintln!(
            "[setup] table ready: {} unique matrices in {:.1}s",
            trasyn.table().len(),
            t0.elapsed().as_secs_f64()
        );
        let samples = if full { 8192 } else { 1024 };
        let base = SynthesisConfig {
            samples,
            budgets: vec![max_t; 3],
            min_tensors: 1,
            epsilon: None, // overridden per compile request
            attempts: 1,
            seed: 0xBEEF,
        };
        let engine = Engine::builder()
            .threads(0) // one worker per core; output is thread-invariant
            .cache_capacity(1 << 16)
            .backend(TrasynBackend::new(Arc::clone(&trasyn), base))
            .backend(GridsynthBackend::default())
            .build();
        Ctx {
            trasyn,
            engine,
            full,
            outdir: PathBuf::from(outdir),
        }
    }

    /// Output path helper.
    pub fn out(&self, name: &str) -> PathBuf {
        self.outdir.join(name)
    }

    /// Number of RQ1 Haar targets (paper: 1000).
    pub fn n_unitaries(&self) -> usize {
        if self.full {
            1000
        } else {
            60
        }
    }

    /// Samples per trasyn pass (paper: 40 000 on an A100).
    pub fn samples(&self) -> usize {
        if self.full {
            8192
        } else {
            1024
        }
    }

    /// Per-tensor T budget for trasyn.
    pub fn budget(&self) -> usize {
        self.trasyn.table().max_t()
    }

    /// The benchmark circuits used by circuit-level experiments: all 187
    /// under `--full`, else a representative subset capped by distinct
    /// rotations.
    pub fn circuits(&self) -> Vec<workloads::BenchmarkCircuit> {
        let suite = workloads::benchmark_suite();
        if self.full {
            return suite;
        }
        // Representative subset: per category, smallest-first until 12.
        let mut out = Vec::new();
        for cat in [
            workloads::Category::Qaoa,
            workloads::Category::QuantumHamiltonian,
            workloads::Category::ClassicalHamiltonian,
            workloads::Category::FtAlgorithm,
        ] {
            let mut cs: Vec<workloads::BenchmarkCircuit> = suite
                .iter()
                .filter(|b| b.category == cat)
                .cloned()
                .collect();
            cs.sort_by_key(|b| rotation_count(&b.circuit));
            out.extend(cs.into_iter().take(12));
        }
        out
    }

    /// The trasyn (U3) workflow on a circuit: the rotation-minimizing U3
    /// transpile setting, re-expressed as a pipeline spec and run through
    /// the engine's lowering pipeline, then direct synthesis of every
    /// rotation with error threshold `eps_rot` per rotation. Returns the
    /// lowered circuit and synthesis output.
    pub fn u3_workflow(&self, c: &Circuit, eps_rot: f64) -> (Circuit, SynthesizedCircuit) {
        self.workflow(c, Basis::U3, BackendKind::Trasyn, eps_rot)
    }

    /// The gridsynth (Rz) workflow: the best Rz transpile setting as a
    /// pipeline spec, then Ross–Selinger synthesis through the engine.
    /// `eps_rot` is the *per-rotation* error threshold (callers scale it
    /// by the rotation ratio to match circuit-level error budgets, §4.3).
    pub fn rz_workflow(&self, c: &Circuit, eps_rot: f64) -> (Circuit, SynthesizedCircuit) {
        self.workflow(c, Basis::Rz, BackendKind::Gridsynth, eps_rot)
    }

    fn workflow(
        &self,
        c: &Circuit,
        basis: Basis,
        backend: BackendKind,
        eps_rot: f64,
    ) -> (Circuit, SynthesizedCircuit) {
        // The paper's methodology: search the basis's settings for the
        // rotation-minimizing one (streaming — only the current best is
        // retained), then hand the *original* circuit plus the winning
        // spec to the engine, whose pass pipeline redoes the lowering on
        // the production path (same passes, bit-identical circuit).
        let (setting, _, lowered) = best_for_basis(c, basis);
        let report = self
            .engine
            .compile_with(c, setting.spec(), backend, eps_rot)
            .expect("engine hosts this backend");
        debug_assert_eq!(
            report.pipeline,
            setting.spec().to_string(),
            "engine must echo the winning spec"
        );
        (lowered, report.synthesized)
    }
}
