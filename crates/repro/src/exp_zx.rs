//! RQ5 / Figure 14: does a T-count optimizer erase trasyn's advantage?

use crate::context::Ctx;
use crate::exp_circuits::{eps_rot, run_both};
use crate::util::{geomean, write_csv};
use circuit::metrics::{clifford_count, gate_count, t_count, t_depth};
use circuit::pass::PipelineSpec;
use circuit::{Basis, Circuit};

/// Runs the post-synthesis optimizer as the production `zx-fold` pass —
/// the same adapter the `zx` pipeline preset uses on the serving path —
/// instead of calling `zxopt::optimize` directly.
fn zx_fold(c: &Circuit) -> Circuit {
    let spec = PipelineSpec::parse("zx-fold").expect("zx-fold is a known pass");
    let mut out = c.clone();
    engine::build_pipeline(&spec, Basis::U3).run(&mut out);
    out
}

/// Figure 14: T / T-depth / Clifford ratios between the two workflows
/// before and after the PyZX-style optimizer.
pub fn fig14(ctx: &Ctx) {
    let circuits = ctx.circuits();
    let eps = eps_rot(ctx);
    let mut rows = Vec::new();
    let mut before_t = Vec::new();
    let mut after_t = Vec::new();
    let mut before_cl = Vec::new();
    let mut after_cl = Vec::new();
    let mut before_td = Vec::new();
    let mut after_td = Vec::new();
    for (i, b) in circuits.iter().enumerate() {
        eprint!("\r[fig14] {}/{} {:<32}", i + 1, circuits.len(), b.name);
        let pair = run_both(ctx, b, eps);
        // The paper caps PyZX runs at 50k gates.
        if gate_count(&pair.u3.circuit) > 50_000 || gate_count(&pair.rz.circuit) > 50_000 {
            continue;
        }
        let u3_opt = zx_fold(&pair.u3.circuit);
        let rz_opt = zx_fold(&pair.rz.circuit);
        let r = |a: usize, b: usize| a as f64 / b.max(1) as f64;
        let bt = r(t_count(&pair.rz.circuit), t_count(&pair.u3.circuit));
        let at = r(t_count(&rz_opt), t_count(&u3_opt));
        let btd = r(t_depth(&pair.rz.circuit), t_depth(&pair.u3.circuit));
        let atd = r(t_depth(&rz_opt), t_depth(&u3_opt));
        let bc = r(clifford_count(&pair.rz.circuit), clifford_count(&pair.u3.circuit));
        let ac = r(clifford_count(&rz_opt), clifford_count(&u3_opt));
        before_t.push(bt);
        after_t.push(at);
        before_td.push(btd);
        after_td.push(atd);
        before_cl.push(bc);
        after_cl.push(ac);
        rows.push(format!(
            "{},{bt:.4},{at:.4},{btd:.4},{atd:.4},{bc:.4},{ac:.4}",
            pair.name
        ));
    }
    eprintln!();
    println!("Figure 14: ratios before/after the PyZX-style optimizer ({} circuits)", rows.len());
    println!(
        "  T count ratio:   before {:.2}x  after {:.2}x",
        geomean(&before_t),
        geomean(&after_t)
    );
    println!(
        "  T depth ratio:   before {:.2}x  after {:.2}x",
        geomean(&before_td),
        geomean(&after_td)
    );
    println!(
        "  Clifford ratio:  before {:.2}x  after {:.2}x",
        geomean(&before_cl),
        geomean(&after_cl)
    );
    println!("  (paper: optimization cannot level the T advantage)");
    write_csv(
        &ctx.out("fig14_pyzx.csv"),
        "benchmark,t_before,t_after,t_depth_before,t_depth_after,clifford_before,clifford_after",
        &rows,
    );
}
