//! RQ1 experiments on Haar-random unitaries: Table 1, Figure 7, Figure 8.

use crate::context::Ctx;
use crate::util::{fmax, fmin, geomean, mean, median, write_csv};
use baselines::{anneal_synthesize, AnnealConfig};
use gridsynth::{synthesize_u3_with, RzOptions};
use qmath::Mat2;
use std::time::Instant;
use trasyn::SynthesisConfig;
use workloads::random::haar_targets;

/// One method's result on one unitary.
struct Point {
    t: usize,
    clifford: usize,
    error: f64,
    seconds: f64,
}

/// Runs trasyn with `tensors` tensors of the context's per-tensor budget.
fn run_trasyn(ctx: &Ctx, u: &Mat2, tensors: usize, seed: u64) -> Point {
    let cfg = SynthesisConfig {
        samples: ctx.samples(),
        budgets: vec![ctx.budget(); tensors],
        min_tensors: tensors,
        epsilon: None,
        attempts: 1,
        seed,
    };
    let t0 = Instant::now();
    let out = ctx.trasyn.synthesize(u, &cfg);
    Point {
        t: out.t_count(),
        clifford: out.clifford_count(),
        error: out.error,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the gridsynth three-Rz workflow at overall error `eps`.
fn run_gridsynth(u: &Mat2, eps: f64) -> Option<Point> {
    let t0 = Instant::now();
    let s = synthesize_u3_with(u, eps, RzOptions::default())?;
    Some(Point {
        t: s.t_count(),
        clifford: s.clifford_count(),
        error: s.error,
        seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Runs the Synthetiq-style annealer at threshold `eps`.
fn run_annealer(u: &Mat2, eps: f64, full: bool, seed: u64) -> (Point, bool) {
    let budget = if full { 400_000 } else { 60_000 };
    let t0 = Instant::now();
    let r = anneal_synthesize(
        u,
        &AnnealConfig {
            epsilon: eps,
            length: 44,
            max_iters: budget,
            restarts: 6,
            seed,
            ..Default::default()
        },
    );
    (
        Point {
            t: r.seq.t_count(),
            clifford: r.seq.clifford_count(),
            error: r.error,
            seconds: t0.elapsed().as_secs_f64(),
        },
        r.converged,
    )
}

/// Table 1: trasyn-vs-gridsynth reduction statistics at the tightest
/// common scale (paper: ε = 0.001 with T budget 30; scaled run compares
/// the 3-tensor trasyn against gridsynth at the matching error level).
pub fn table1(ctx: &Ctx) {
    let targets = haar_targets(ctx.n_unitaries(), 0xAB01);
    let mut t_ratios = Vec::new();
    let mut c_ratios = Vec::new();
    let mut rows = Vec::new();
    for (i, u) in targets.iter().enumerate() {
        let tr = run_trasyn(ctx, u, 3, 0x1000 + i as u64);
        // Match gridsynth's error to what trasyn achieved (the paper holds
        // errors comparable and compares T counts).
        let eps = tr.error.clamp(2e-4, 0.3);
        let Some(gs) = run_gridsynth(u, eps) else {
            continue;
        };
        let tr_t = tr.t.max(1);
        let tr_c = tr.clifford.max(1);
        t_ratios.push(gs.t as f64 / tr_t as f64);
        c_ratios.push(gs.clifford as f64 / tr_c as f64);
        rows.push(format!(
            "{i},{},{},{},{},{:.3e},{:.3e}",
            tr.t, gs.t, tr.clifford, gs.clifford, tr.error, gs.error
        ));
    }
    println!("Table 1: reductions of trasyn over gridsynth (n = {})", rows.len());
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "reduction", "min", "mean", "geomean", "median", "max"
    );
    for (name, v) in [("T count", &t_ratios), ("Clifford count", &c_ratios)] {
        println!(
            "{:<16} {:>7.2}x {:>7.2}x {:>8.2}x {:>7.2}x {:>7.2}x",
            name,
            fmin(v),
            mean(v),
            geomean(v),
            median(v),
            fmax(v)
        );
    }
    println!("  (paper at eps=1e-3: T geomean 3.74x, Clifford geomean 5.73x)");
    write_csv(
        &ctx.out("table1.csv"),
        "idx,trasyn_t,gridsynth_t,trasyn_clifford,gridsynth_clifford,trasyn_error,gridsynth_error",
        &rows,
    );
}

/// Figure 7: synthesis error vs T count and Clifford count for the three
/// methods at three scales.
pub fn fig7(ctx: &Ctx) {
    let targets = haar_targets(ctx.n_unitaries(), 0xAB07);
    let eps_levels = [0.1f64, 0.01, 0.001];
    let mut rows = Vec::new();
    let mut fails = [0usize; 3];
    for (i, u) in targets.iter().enumerate() {
        for (scale, tensors) in [(0usize, 1usize), (1, 2), (2, 3)] {
            let p = run_trasyn(ctx, u, tensors, 0x7000 + i as u64);
            rows.push(format!(
                "trasyn,{scale},{i},{},{},{:.4e},{:.4}",
                p.t, p.clifford, p.error, p.seconds
            ));
        }
        for (scale, eps) in eps_levels.iter().enumerate() {
            if let Some(p) = run_gridsynth(u, *eps) {
                rows.push(format!(
                    "gridsynth,{scale},{i},{},{},{:.4e},{:.4}",
                    p.t, p.clifford, p.error, p.seconds
                ));
            }
            let (p, converged) = run_annealer(u, *eps, ctx.full, 0x77 + i as u64);
            if !converged {
                fails[scale] += 1;
            }
            rows.push(format!(
                "synthetiq,{scale},{i},{},{},{:.4e},{:.4}",
                p.t, p.clifford, p.error, p.seconds
            ));
        }
    }
    summarize_fig7(&rows, targets.len(), &fails);
    write_csv(
        &ctx.out("fig7_scatter.csv"),
        "method,scale,idx,t_count,clifford_count,error,seconds",
        &rows,
    );
}

fn summarize_fig7(rows: &[String], n: usize, fails: &[usize; 3]) {
    println!("Figure 7: synthesis error vs T / Clifford count ({n} unitaries)");
    for method in ["trasyn", "gridsynth", "synthetiq"] {
        for scale in 0..3 {
            let pts: Vec<(f64, f64, f64)> = rows
                .iter()
                .filter(|r| r.starts_with(&format!("{method},{scale},")))
                .map(|r| {
                    let f: Vec<&str> = r.split(',').collect();
                    (
                        f[3].parse().unwrap_or(0.0),
                        f[4].parse().unwrap_or(0.0),
                        f[5].parse().unwrap_or(1.0),
                    )
                })
                .collect();
            if pts.is_empty() {
                continue;
            }
            let ts: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let cs: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let es: Vec<f64> = pts.iter().map(|p| p.2).collect();
            println!(
                "  {method:<10} scale {scale}: mean #T {:>6.1}  mean #Clifford {:>6.1}  median err {:.2e}",
                mean(&ts),
                mean(&cs),
                median(&es)
            );
        }
    }
    println!(
        "  synthetiq non-converged runs per scale: {fails:?} (paper: 1, 931, 1000 of 1000)"
    );
}

/// Figure 8: wall-clock synthesis time per method per error scale.
///
/// Hardware substitution: the paper price-adjusts A100-GPU vs 24-core-CPU
/// time; everything here runs on the same CPU, so we report raw seconds
/// (EXPERIMENTS.md discusses the mapping).
pub fn fig8(ctx: &Ctx) {
    let targets = haar_targets((ctx.n_unitaries() / 2).max(10), 0xAB08);
    let eps_levels = [0.1f64, 0.01, 0.001];
    let mut rows = Vec::new();
    println!("Figure 8: synthesis time (seconds, same CPU for all methods)");
    println!(
        "{:<10} {:>9} {:>12} {:>12}",
        "eps", "trasyn", "gridsynth", "synthetiq"
    );
    for (scale, eps) in eps_levels.iter().enumerate() {
        let tensors = scale + 1;
        let mut t_tr = Vec::new();
        let mut t_gs = Vec::new();
        let mut t_an = Vec::new();
        for (i, u) in targets.iter().enumerate() {
            t_tr.push(run_trasyn(ctx, u, tensors, 0x8000 + i as u64).seconds);
            if let Some(p) = run_gridsynth(u, *eps) {
                t_gs.push(p.seconds);
            }
            let (p, _) = run_annealer(u, *eps, false, 0x88 + i as u64);
            t_an.push(p.seconds);
        }
        println!(
            "{:<10} {:>9.3} {:>12.3} {:>12.3}",
            eps,
            median(&t_tr),
            median(&t_gs),
            median(&t_an)
        );
        rows.push(format!(
            "{eps},{:.4},{:.4},{:.4}",
            median(&t_tr),
            median(&t_gs),
            median(&t_an)
        ));
    }
    write_csv(
        &ctx.out("fig8_time.csv"),
        "eps,trasyn_median_s,gridsynth_median_s,synthetiq_median_s",
        &rows,
    );
}
