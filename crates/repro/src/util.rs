//! Statistics and output helpers shared by the experiments.

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Geometric mean of positive values (ignores non-finite entries).
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median (of a copy; NaNs sorted last).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Minimum.
pub fn fmin(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum.
pub fn fmax(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Writes a CSV file (header + stringified rows).
pub fn write_csv(path: &Path, header: &str, rows: &[String]) {
    let mut f = File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("  wrote {path:?} ({} rows)", rows.len());
}

/// A simple least-squares fit of `y = a·x^b` via log-log regression,
/// returning `(a, b)`.
pub fn power_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys.iter())
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}
