//! Transpilation-level experiments: Table 2, Figure 3(b), Figure 6.

use crate::context::Ctx;
use crate::util::{fmax, fmin, geomean, write_csv};
use circuit::levels::{best_for_basis, transpile, Basis, TranspileSetting};
use circuit::metrics::rotation_count;
use workloads::{benchmark_suite, suite::suite_stats, Category};

/// Table 2: dataset summary (qubits and rotations per category).
pub fn table2(ctx: &Ctx) {
    let suite = benchmark_suite();
    println!("Table 2: benchmark datasets (regenerated suite)");
    println!(
        "{:<24} {:>5} | {:>6} {:>7} {:>6} | {:>6} {:>9} {:>6}",
        "dataset", "count", "min_q", "mean_q", "max_q", "min_rot", "mean_rot", "max_rot"
    );
    let mut rows = Vec::new();
    for cat in [
        Category::Qaoa,
        Category::QuantumHamiltonian,
        Category::ClassicalHamiltonian,
        Category::FtAlgorithm,
    ] {
        let benches: Vec<_> = suite.iter().filter(|b| b.category == cat).collect();
        let stats = suite_stats(benches.iter().copied());
        println!(
            "{:<24} {:>5} | {:>6} {:>7.1} {:>6} | {:>6} {:>9.1} {:>6}",
            cat.label(),
            benches.len(),
            stats.min_qubits,
            stats.mean_qubits,
            stats.max_qubits,
            stats.min_rotations,
            stats.mean_rotations,
            stats.max_rotations
        );
        rows.push(format!(
            "{},{},{},{:.2},{},{},{:.2},{}",
            cat.label(),
            benches.len(),
            stats.min_qubits,
            stats.mean_qubits,
            stats.max_qubits,
            stats.min_rotations,
            stats.mean_rotations,
            stats.max_rotations
        ));
    }
    write_csv(
        &ctx.out("table2.csv"),
        "dataset,count,min_qubits,mean_qubits,max_qubits,min_rotations,mean_rotations,max_rotations",
        &rows,
    );
}

/// Figure 3(b): per-benchmark ratio of Rz-basis rotations to U3-basis
/// rotations (best of four levels per basis, no commutation — matching
/// the paper's §2.2 methodology).
pub fn fig3(ctx: &Ctx) {
    let suite = benchmark_suite();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for b in &suite {
        let rz = best_rotations(&b.circuit, Basis::Rz, false);
        let u3 = best_rotations(&b.circuit, Basis::U3, false);
        let ratio = rz as f64 / u3.max(1) as f64;
        ratios.push(ratio);
        rows.push(format!("{},{},{},{:.4}", b.name, rz, u3, ratio));
    }
    println!(
        "Figure 3(b): #Rz/#U3 rotation ratio over {} benchmarks",
        suite.len()
    );
    println!(
        "  geomean {:.3}   min {:.3}   max {:.3}   (paper: up to ~2.5x)",
        geomean(&ratios),
        fmin(&ratios),
        fmax(&ratios)
    );
    write_csv(
        &ctx.out("fig3_rotation_ratio.csv"),
        "benchmark,rz_rotations,u3_rotations,ratio",
        &rows,
    );
}

fn best_rotations(c: &circuit::Circuit, basis: Basis, commutation: bool) -> usize {
    (0..=3u8)
        .map(|level| {
            let t = transpile(
                c,
                TranspileSetting {
                    basis,
                    level,
                    commutation,
                },
            );
            rotation_count(&t)
        })
        .min()
        .expect("four levels")
}

/// Figure 6: which of the 16 transpile settings (2 IR × 4 levels ×
/// ±commutation) produces the fewest rotations, counted over all
/// benchmarks.
pub fn fig6(ctx: &Ctx) {
    let suite = benchmark_suite();
    let settings = TranspileSetting::all();
    let mut wins = vec![0usize; settings.len()];
    for b in &suite {
        let counts: Vec<usize> = settings
            .iter()
            .map(|&s| rotation_count(&transpile(&b.circuit, s)))
            .collect();
        let best = *counts.iter().min().expect("16 settings");
        // Paper counts every setting achieving the minimum as an instance.
        for (i, &c) in counts.iter().enumerate() {
            if c == best {
                wins[i] += 1;
            }
        }
    }
    println!("Figure 6: settings achieving the fewest rotations ({} circuits)", suite.len());
    println!(
        "{:<6} {:<6} {:<13} {:>6}  pipeline spec",
        "basis", "level", "commutation", "wins"
    );
    let mut rows = Vec::new();
    let mut u3_wins = 0usize;
    let mut rz_wins = 0usize;
    for (s, &w) in settings.iter().zip(wins.iter()) {
        let basis = match s.basis {
            Basis::Rz => "Rz",
            Basis::U3 => "U3",
        };
        // Every setting is a pass-pipeline spec now; print and record the
        // spec string so winners can be replayed with `--pipeline`.
        let spec = s.spec().to_string();
        println!(
            "{:<6} {:<6} {:<13} {:>6}  {spec}",
            basis,
            s.level,
            if s.commutation { "with" } else { "without" },
            w
        );
        rows.push(format!("{basis},{},{},{w},\"{spec}\"", s.level, s.commutation));
        match s.basis {
            Basis::U3 => u3_wins += w,
            Basis::Rz => rz_wins += w,
        }
    }
    println!("  U3 total wins: {u3_wins}   Rz total wins: {rz_wins} (paper: U3 wins most circuits)");
    write_csv(
        &ctx.out("fig6_setting_wins.csv"),
        "basis,level,commutation,wins,pipeline_spec",
        &rows,
    );
    // Also record the commutation benefit on QAOA explicitly (§3.4).
    let qaoa_gain: Vec<f64> = suite
        .iter()
        .filter(|b| b.category == Category::Qaoa)
        .map(|b| {
            let without = best_rotations(&b.circuit, Basis::U3, false) as f64;
            let with = best_rotations(&b.circuit, Basis::U3, true) as f64;
            without / with.max(1.0)
        })
        .collect();
    println!(
        "  QAOA rotation reduction from commutation: geomean {:.2}x (paper: ~1.67x = 40%)",
        geomean(&qaoa_gain)
    );
    let _ = best_for_basis; // referenced for doc purposes
}
