//! Circuit-level experiments: Figure 2, Figure 10, Figure 11.

use crate::context::Ctx;
use crate::util::{fmax, fmin, geomean, write_csv};
use circuit::metrics::{clifford_count, rotation_count, t_count, t_depth};
use circuit::Circuit;
use sim::density::DensityMatrix;
use sim::noise::{NoiseModel, NoiseTarget};
use sim::statevector::State;
use workloads::{BenchmarkCircuit, Category};

/// Per-rotation error budget of the scaled runs. The paper uses 0.007;
/// the CPU-scaled trasyn (3 tensors × 7 T) bottoms out near 1e-2, so the
/// default budget is 0.03 for *both* workflows — the reduction ratios
/// (the figure's content) are preserved. `--full` tightens to 0.01.
pub fn eps_rot(ctx: &Ctx) -> f64 {
    if ctx.full {
        0.01
    } else {
        0.03
    }
}

/// Both workflows applied to one benchmark.
pub struct WorkflowPair {
    /// Benchmark name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Original circuit.
    pub original: Circuit,
    /// trasyn / U3 workflow output.
    pub u3: circuit::synthesize::SynthesizedCircuit,
    /// gridsynth / Rz workflow output.
    pub rz: circuit::synthesize::SynthesizedCircuit,
}

/// Runs both workflows with the paper's error matching: gridsynth's
/// per-rotation threshold is scaled by the (U3:Rz) rotation-count ratio so
/// both circuits land at about the same summed error (§4.3).
pub fn run_both(ctx: &Ctx, b: &BenchmarkCircuit, eps: f64) -> WorkflowPair {
    let (u3_lowered, u3_synth) = ctx.u3_workflow(&b.circuit, eps);
    let rz_rot = {
        let (_, r, _) = circuit::levels::best_for_basis(&b.circuit, circuit::levels::Basis::Rz);
        r
    };
    let u3_rot = rotation_count(&u3_lowered);
    let scale = (u3_rot.max(1) as f64 / rz_rot.max(1) as f64).min(1.0);
    let (_, rz_synth) = ctx.rz_workflow(&b.circuit, eps * scale);
    WorkflowPair {
        name: b.name.clone(),
        category: b.category,
        original: b.circuit.clone(),
        u3: u3_synth,
        rz: rz_synth,
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    a as f64 / b.max(1) as f64
}

/// Figure 2: headline reduction ratios across the suite — T count,
/// Clifford count, and noisy infidelity at logical error rate 1e-5 for
/// the small-circuit subset.
pub fn fig2(ctx: &Ctx) {
    let circuits = ctx.circuits();
    let eps = eps_rot(ctx);
    let mut t_ratios = Vec::new();
    let mut c_ratios = Vec::new();
    let mut infid_ratios = Vec::new();
    let mut rows = Vec::new();
    for (i, b) in circuits.iter().enumerate() {
        eprint!("\r[fig2] {}/{} {:<32}", i + 1, circuits.len(), b.name);
        let pair = run_both(ctx, b, eps);
        let tr = ratio(t_count(&pair.rz.circuit), t_count(&pair.u3.circuit));
        let cr = ratio(
            clifford_count(&pair.rz.circuit),
            clifford_count(&pair.u3.circuit),
        );
        t_ratios.push(tr);
        c_ratios.push(cr);
        let mut infid = String::new();
        if b.circuit.n_qubits() <= 6 {
            let fi_u3 = noisy_infidelity(&pair.original, &pair.u3.circuit, 1e-5);
            let fi_rz = noisy_infidelity(&pair.original, &pair.rz.circuit, 1e-5);
            let r = fi_rz / fi_u3.max(1e-15);
            infid_ratios.push(r);
            infid = format!("{r:.4}");
        }
        rows.push(format!("{},{tr:.4},{cr:.4},{infid}", pair.name));
    }
    eprintln!();
    println!("Figure 2: reduction ratios gridsynth/trasyn over {} circuits", rows.len());
    println!(
        "  T count:        geomean {:.2}x  min {:.2}x  max {:.2}x  (paper geomean 1.38x, max 3.5x)",
        geomean(&t_ratios),
        fmin(&t_ratios),
        fmax(&t_ratios)
    );
    println!(
        "  Clifford count: geomean {:.2}x  min {:.2}x  max {:.2}x  (paper geomean 2.44x, max ~7x)",
        geomean(&c_ratios),
        fmin(&c_ratios),
        fmax(&c_ratios)
    );
    if !infid_ratios.is_empty() {
        println!(
            "  Infidelity @ LER 1e-5 ({} small circuits): geomean {:.2}x  max {:.2}x (paper geomean 2.07x)",
            infid_ratios.len(),
            geomean(&infid_ratios),
            fmax(&infid_ratios)
        );
    }
    write_csv(
        &ctx.out("fig2_headline.csv"),
        "benchmark,t_ratio,clifford_ratio,infidelity_ratio_ler1e-5",
        &rows,
    );
}

/// Noisy infidelity of a synthesized circuit against the ideal original,
/// with depolarizing noise on non-Pauli gates.
pub fn noisy_infidelity(original: &Circuit, synthesized: &Circuit, ler: f64) -> f64 {
    let mut ideal = State::zero(original.n_qubits());
    ideal.apply_circuit(original);
    let model = NoiseModel {
        rate: ler,
        target: NoiseTarget::NonPauliGates,
    };
    let mut rho = DensityMatrix::zero(synthesized.n_qubits());
    rho.apply_noisy_circuit(synthesized, &model);
    (1.0 - rho.fidelity_with_pure(&ideal)).max(0.0)
}

/// Figure 10: per-category T count, T depth, and Clifford reductions with
/// error-level guards (log unitary-distance ratios).
pub fn fig10(ctx: &Ctx) {
    let circuits = ctx.circuits();
    let eps = eps_rot(ctx);
    let mut rows = Vec::new();
    struct Acc {
        t: Vec<f64>,
        td: Vec<f64>,
        cl: Vec<f64>,
        err: Vec<f64>,
    }
    let mut acc: std::collections::HashMap<&'static str, Acc> = Default::default();
    for (i, b) in circuits.iter().enumerate() {
        eprint!("\r[fig10] {}/{} {:<32}", i + 1, circuits.len(), b.name);
        let pair = run_both(ctx, b, eps);
        let tr = ratio(t_count(&pair.rz.circuit), t_count(&pair.u3.circuit));
        let td = ratio(t_depth(&pair.rz.circuit), t_depth(&pair.u3.circuit));
        let cl = ratio(
            clifford_count(&pair.rz.circuit),
            clifford_count(&pair.u3.circuit),
        );
        // Error guard: log-error ratio should hover near 1.
        let le = (pair.u3.total_error.max(1e-12)).ln() / (pair.rz.total_error.max(1e-12)).ln();
        let e = acc.entry(pair.category.label()).or_insert_with(|| Acc {
            t: vec![],
            td: vec![],
            cl: vec![],
            err: vec![],
        });
        e.t.push(tr);
        e.td.push(td);
        e.cl.push(cl);
        e.err.push(le);
        rows.push(format!(
            "{},{},{tr:.4},{td:.4},{cl:.4},{le:.4}",
            pair.name,
            b.category.label()
        ));
    }
    eprintln!();
    println!("Figure 10: per-category reduction ratios (gridsynth / trasyn)");
    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>10}",
        "category", "T", "T-depth", "Clifford", "logErrRatio"
    );
    for (cat, paper) in [
        ("QAOA", "1.64/1.66/2.44"),
        ("Quantum Hamiltonian", "1.46/1.45/2.88"),
        ("Classical Hamiltonian", "1.09/1.11/1.75"),
        ("FT Algorithm", "1.17/1.15/2.43"),
    ] {
        if let Some(a) = acc.get(cat) {
            println!(
                "{:<22} {:>7.2}x {:>8.2}x {:>9.2}x {:>10.2}   (paper {paper})",
                cat,
                geomean(&a.t),
                geomean(&a.td),
                geomean(&a.cl),
                geomean(&a.err)
            );
        }
    }
    write_csv(
        &ctx.out("fig10_categories.csv"),
        "benchmark,category,t_ratio,t_depth_ratio,clifford_ratio,log_err_ratio",
        &rows,
    );
}

/// Figure 11: the absolute circuit infidelities trasyn achieves, ordered
/// by qubit count and by rotation count (ideal, noise-free simulation).
pub fn fig11(ctx: &Ctx) {
    let circuits: Vec<BenchmarkCircuit> = ctx
        .circuits()
        .into_iter()
        .filter(|b| b.circuit.n_qubits() <= 12)
        .collect();
    let eps = eps_rot(ctx);
    let mut rows = Vec::new();
    for (i, b) in circuits.iter().enumerate() {
        eprint!("\r[fig11] {}/{} {:<32}", i + 1, circuits.len(), b.name);
        let (_, synth) = ctx.u3_workflow(&b.circuit, eps);
        let infid = sim::fidelity::circuit_state_infidelity(&synth.circuit, &b.circuit);
        rows.push(format!(
            "{},{},{},{:.6e},{:.6e}",
            b.name,
            b.circuit.n_qubits(),
            synth.rotations,
            infid,
            synth.total_error
        ));
    }
    eprintln!();
    println!("Figure 11: absolute trasyn circuit infidelities ({} circuits)", rows.len());
    let infids: Vec<f64> = rows
        .iter()
        .map(|r| r.split(',').nth(3).unwrap().parse().unwrap())
        .collect();
    println!(
        "  infidelity range: {:.2e} .. {:.2e} (grows with #rotations, as in the paper)",
        fmin(&infids),
        fmax(&infids)
    );
    write_csv(
        &ctx.out("fig11_infidelity.csv"),
        "benchmark,n_qubits,n_rotations,state_infidelity,summed_synthesis_error",
        &rows,
    );
}
