//! Figure 12: trasyn vs the BQSKit+gridsynth workflow.

use crate::context::Ctx;
use crate::exp_circuits::eps_rot;
use crate::util::{geomean, write_csv};
use baselines::resynth::resynthesize;
use circuit::metrics::{rotation_count, t_count};
use circuit::synthesize::synthesize_circuit;
use gridsynth::{synthesize_rz_with, RzOptions};
use qmath::Mat2;

/// Figure 12: rotation count, T count, and log-infidelity ratios of the
/// BQSKit-style resynthesis + gridsynth workflow over trasyn.
pub fn fig12(ctx: &Ctx) {
    let circuits = ctx.circuits();
    let eps = eps_rot(ctx);
    let mut rot_ratios = Vec::new();
    let mut t_ratios = Vec::new();
    let mut err_ratios = Vec::new();
    let mut rows = Vec::new();
    for (i, b) in circuits.iter().enumerate() {
        eprint!("\r[fig12] {}/{} {:<32}", i + 1, circuits.len(), b.name);
        // trasyn workflow.
        let (u3_lowered, u3_synth) = ctx.u3_workflow(&b.circuit, eps);
        let u3_rot = rotation_count(&u3_lowered).max(1);
        // BQSKit-style: resynthesize into generic Rz, then gridsynth.
        let bq = resynthesize(&b.circuit);
        let bq_rot = rotation_count(&bq);
        let scale = (u3_rot as f64 / bq_rot.max(1) as f64).min(1.0);
        let opts = RzOptions::default();
        let bq_synth = synthesize_circuit(&bq, |m: &Mat2| {
            let angle = crate::context::rz_angle_of(m);
            match angle {
                Some(theta) => {
                    let r = synthesize_rz_with(theta, eps * scale, opts)
                        .expect("gridsynth converges");
                    (r.seq, r.error)
                }
                None => {
                    let r = gridsynth::synthesize_u3(m, eps).expect("gridsynth converges");
                    (r.seq, r.error)
                }
            }
        });
        let rr = bq_rot as f64 / u3_rot as f64;
        let tr = t_count(&bq_synth.circuit) as f64 / t_count(&u3_synth.circuit).max(1) as f64;
        let er =
            (u3_synth.total_error.max(1e-12)).ln() / (bq_synth.total_error.max(1e-12)).ln();
        rot_ratios.push(rr);
        t_ratios.push(tr);
        err_ratios.push(er);
        rows.push(format!("{},{rr:.4},{tr:.4},{er:.4}", b.name));
    }
    eprintln!();
    println!(
        "Figure 12: BQSKit+gridsynth vs trasyn ratios over {} circuits",
        rows.len()
    );
    println!(
        "  rotations: geomean {:.2}x   T count: geomean {:.2}x   log-infid ratio: {:.2}",
        geomean(&rot_ratios),
        geomean(&t_ratios),
        geomean(&err_ratios)
    );
    println!("  (paper: BQSKit inflates rotations, hence more T gates — ratios above 1)");
    write_csv(
        &ctx.out("fig12_bqskit.csv"),
        "benchmark,rotation_ratio,t_ratio,log_infidelity_ratio",
        &rows,
    );
}
