//! RQ2: the synthesis-error vs logical-error tradeoff (Figure 9).

use crate::context::Ctx;
use crate::util::{mean, power_fit, write_csv};
use gridsynth::{synthesize_rz_with, RzOptions};
use qmath::Mat2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::noise::{NoiseModel, NoiseTarget};

/// Figure 9(a): process infidelity vs synthesis error threshold for
/// several logical error rates; (b): the optimal threshold per rate with
/// a √-law fit (paper: ≈ 1.22·√λ).
pub fn fig9(ctx: &Ctx) {
    let n_angles = if ctx.full { 1000 } else { 120 };
    let mut rng = StdRng::seed_from_u64(0xF19);
    let angles: Vec<f64> = (0..n_angles)
        .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
        .collect();

    // Synthesis error thresholds 1e-1 .. 1e-4.5 (log grid). The paper
    // sweeps to 1e-5; the default CPU run stops at ~3e-5 to bound runtime.
    let n_eps = if ctx.full { 11 } else { 8 };
    let eps_grid: Vec<f64> = (0..n_eps)
        .map(|i| 10f64.powf(-1.0 - 0.45 * i as f64))
        .collect();
    let logical_rates = [1e-7f64, 1e-6, 1e-5, 1e-4, 1e-3];

    // Pre-synthesize every angle at every threshold (the expensive part),
    // recording T counts; the noise composition afterwards is exact PTM
    // algebra.
    let opts = RzOptions::default();
    let mut rows_a = Vec::new();
    println!("Figure 9(a): process infidelity vs synthesis error threshold");
    println!("  (each cell: mean over {n_angles} random Rz angles)");
    print!("{:<12}", "eps \\ LER");
    for ler in logical_rates {
        print!(" {ler:>10.0e}");
    }
    println!();
    let mut mean_infid: Vec<Vec<f64>> = Vec::new();
    for &eps in &eps_grid {
        let mut per_rate: Vec<Vec<f64>> = vec![Vec::new(); logical_rates.len()];
        for &theta in &angles {
            let Some(r) = synthesize_rz_with(theta, eps, opts) else {
                continue;
            };
            let target = Mat2::rz(theta);
            for (k, &ler) in logical_rates.iter().enumerate() {
                let model = NoiseModel {
                    rate: ler,
                    target: NoiseTarget::TGatesOnly,
                };
                per_rate[k].push(model.process_infidelity(&r.seq, &target));
            }
        }
        let means: Vec<f64> = per_rate.iter().map(|v| mean(v)).collect();
        print!("{eps:<12.2e}");
        for m in &means {
            print!(" {m:>10.2e}");
        }
        println!();
        for (k, &ler) in logical_rates.iter().enumerate() {
            rows_a.push(format!("{eps:.3e},{ler:.0e},{:.6e}", means[k]));
        }
        mean_infid.push(means);
    }
    write_csv(
        &ctx.out("fig9a_infidelity.csv"),
        "synthesis_eps,logical_error_rate,mean_process_infidelity",
        &rows_a,
    );

    // Figure 9(b): the optimal threshold per logical rate.
    let mut opt_eps = Vec::new();
    let mut rows_b = Vec::new();
    for (k, &ler) in logical_rates.iter().enumerate() {
        let (best_i, _) = mean_infid
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v[k]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("grid non-empty");
        let eps_star = eps_grid[best_i];
        opt_eps.push((ler, eps_star));
        rows_b.push(format!("{ler:.0e},{eps_star:.4e}"));
    }
    let xs: Vec<f64> = opt_eps.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = opt_eps.iter().map(|p| p.1).collect();
    let (a, b) = power_fit(&xs, &ys);
    println!("Figure 9(b): optimal synthesis threshold per logical rate");
    for (ler, e) in &opt_eps {
        println!("  LER {ler:>8.0e}  ->  eps* = {e:.2e}");
    }
    println!(
        "  power-law fit: eps* = {a:.2}·λ^{b:.2}   (paper: 1.22·λ^0.5)"
    );
    write_csv(
        &ctx.out("fig9b_optimal_eps.csv"),
        "logical_error_rate,optimal_eps",
        &rows_b,
    );
}
