//! OpenQASM 2.0 export.
//!
//! Lets synthesized circuits flow into external toolchains (Qiskit, PyZX,
//! staq …) for cross-validation. Only the gate set this workspace emits is
//! supported: `h s sdg t tdg x y z rz rx ry u3 cx`.

use crate::ir::{Circuit, Op};
use gates::Gate;
use std::fmt;
use std::fmt::Write;

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// ```
/// use circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let q = circuit::qasm::to_qasm(&c);
/// assert!(q.contains("h q[0];"));
/// assert!(q.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(c: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", c.n_qubits());
    for i in c.instrs() {
        match i.op {
            Op::Cx => {
                let _ = writeln!(out, "cx q[{}],q[{}];", i.q0, i.q1.expect("cx target"));
            }
            Op::Rz(a) => {
                let _ = writeln!(out, "rz({a}) q[{}];", i.q0);
            }
            Op::Rx(a) => {
                let _ = writeln!(out, "rx({a}) q[{}];", i.q0);
            }
            Op::Ry(a) => {
                let _ = writeln!(out, "ry({a}) q[{}];", i.q0);
            }
            Op::U3 { theta, phi, lambda } => {
                let _ = writeln!(out, "u3({theta},{phi},{lambda}) q[{}];", i.q0);
            }
            Op::Gate1(g) => {
                let name = match g {
                    Gate::H => "h",
                    Gate::S => "s",
                    Gate::Sdg => "sdg",
                    Gate::T => "t",
                    Gate::Tdg => "tdg",
                    Gate::X => "x",
                    Gate::Y => "y",
                    Gate::Z => "z",
                };
                let _ = writeln!(out, "{name} q[{}];", i.q0);
            }
        }
    }
    out
}

/// A parse failure with its 1-based source line, so front ends (the
/// `trasyn-compile` CLI, the server's 400 responses) can say *what*
/// failed, not just that something did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based line number of the offending statement (`0` for
    /// whole-program failures like a missing `qreg`).
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl QasmError {
    fn at(line: usize, message: impl Into<String>) -> QasmError {
        QasmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for QasmError {}

/// Largest register [`parse_qasm`] accepts. Generous for every workload
/// in this workspace (the suite tops out at dozens of qubits), but small
/// enough that per-qubit scratch allocations downstream (fusion
/// accumulators, parity tables) stay trivially cheap — a hostile
/// `qreg q[10000000000];` must be a parse error, not a 700 GB
/// allocation that aborts the server.
pub const MAX_QUBITS: usize = 4096;

/// Parses the subset of OpenQASM 2.0 emitted by [`to_qasm`], reporting
/// the first unsupported construct with its line number (this is a
/// round-trip aid, not a general front end). Registers larger than
/// [`MAX_QUBITS`] are rejected.
///
/// Real-world QASM 2.0 trimmings are tolerated without contributing
/// instructions: `//` comments (whole-line or trailing), blank lines, the
/// `OPENQASM 2.0;` version line, and an `include "qelib1.inc";` line.
pub fn parse_qasm(src: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        // Comments run to end of line; `//` cannot occur inside any
        // supported statement (no string literals in this subset).
        let line = match raw.split_once("//") {
            Some((code, _)) => code.trim(),
            None => raw.trim(),
        };
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let line = line
            .strip_suffix(';')
            .ok_or_else(|| QasmError::at(lineno, format!("missing ';' after '{line}'")))?;
        if let Some(rest) = line.strip_prefix("qreg q[") {
            let n: usize = rest
                .strip_suffix(']')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| QasmError::at(lineno, format!("malformed register '{line};'")))?;
            if n > MAX_QUBITS {
                return Err(QasmError::at(
                    lineno,
                    format!("register too large: {n} qubits (max {MAX_QUBITS})"),
                ));
            }
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit
            .as_mut()
            .ok_or_else(|| QasmError::at(lineno, "statement before the 'qreg q[n];' declaration"))?;
        let bad_stmt = || QasmError::at(lineno, format!("unsupported statement '{line};'"));
        let in_range = |q: usize, c: &Circuit| {
            if q < c.n_qubits() {
                Ok(q)
            } else {
                Err(QasmError::at(
                    lineno,
                    format!("qubit q[{q}] out of range (register has {})", c.n_qubits()),
                ))
            }
        };
        let (head, args) = line.split_once(" q[").ok_or_else(bad_stmt)?;
        if head == "cx" {
            // "cx q[a],q[b]" split differently: args = "a],q[b]".
            let (a, b) = args
                .split_once("],q[")
                .and_then(|(a, rest)| Some((a, rest.strip_suffix(']')?)))
                .ok_or_else(bad_stmt)?;
            let (a, b) = match (a.parse(), b.parse()) {
                (Ok(a), Ok(b)) => (in_range(a, c)?, in_range(b, c)?),
                _ => return Err(bad_stmt()),
            };
            if a == b {
                return Err(QasmError::at(lineno, format!("self-CNOT on q[{a}]")));
            }
            c.cx(a, b);
            continue;
        }
        let q: usize = args
            .strip_suffix(']')
            .and_then(|s| s.parse().ok())
            .ok_or_else(bad_stmt)?;
        let q = in_range(q, c)?;
        if let Some(g) = match head {
            "h" => Some(Gate::H),
            "s" => Some(Gate::S),
            "sdg" => Some(Gate::Sdg),
            "t" => Some(Gate::T),
            "tdg" => Some(Gate::Tdg),
            "x" => Some(Gate::X),
            "y" => Some(Gate::Y),
            "z" => Some(Gate::Z),
            _ => None,
        } {
            c.gate(q, g);
            continue;
        }
        // Parametrized forms: name(params).
        let (name, params) = head.split_once('(').ok_or_else(bad_stmt)?;
        let params = params.strip_suffix(')').ok_or_else(bad_stmt)?;
        let vals: Vec<f64> = params
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad_stmt())?;
        match (name, vals.as_slice()) {
            ("rz", [a]) => c.rz(q, *a),
            ("rx", [a]) => c.rx(q, *a),
            ("ry", [a]) => c.ry(q, *a),
            ("u3", [t, p, l]) => c.u3(q, *t, *p, *l),
            _ => return Err(bad_stmt()),
        }
    }
    circuit.ok_or_else(|| QasmError::at(0, "no 'qreg q[n];' declaration"))
}

/// `Option` shim over [`parse_qasm`] for call sites that only care
/// whether the program parses.
pub fn from_qasm(src: &str) -> Option<Circuit> {
    parse_qasm(src).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        c.gate(1, Gate::Tdg);
        c.rz(2, 0.25);
        c.u3(0, 0.1, -0.2, 0.3);
        c.cx(0, 2);
        c.gate(2, Gate::Sdg);
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let q = to_qasm(&c);
        let back = from_qasm(&q).expect("own output parses");
        assert_eq!(back.n_qubits(), c.n_qubits());
        assert_eq!(back.len(), c.len());
        assert_eq!(back.instrs(), c.instrs());
    }

    #[test]
    fn header_and_register() {
        let q = to_qasm(&sample());
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_qasm("qreg q[2];\nfoo q[0];").is_none());
        assert!(from_qasm("h q[0];").is_none(), "missing qreg");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "OPENQASM 2.0;\n// a comment\n\nqreg q[1];\nh q[0];\n";
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn real_world_trimmings_tolerated() {
        // Trailing comments, indentation, blank lines, and the qelib
        // include — the shape of files Qiskit and hand authors produce.
        let src = "\
// exported by some toolchain
OPENQASM 2.0;
include \"qelib1.inc\";   // standard library

qreg q[2];  // two qubits
  h q[0];   // indented + trailing comment
cx q[0],q[1]; // entangle
// rz below
rz(0.25) q[1];
";
        let c = from_qasm(src).expect("real-world trimmings parse");
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn comment_only_and_empty_sources_have_no_register() {
        assert!(from_qasm("// nothing here\n\n").is_none());
        assert!(from_qasm("").is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("frobnicate"), "{err}");
        assert_eq!(err.to_string(), format!("line 3: {}", err.message));

        let err = parse_qasm("qreg q[2];\nh q[0]").unwrap_err();
        assert_eq!(err.line, 2, "missing semicolon: {err}");
        assert!(err.message.contains("';'"));

        let err = parse_qasm("h q[0];\nqreg q[1];").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("qreg"), "{err}");

        let err = parse_qasm("// only comments\n").unwrap_err();
        assert_eq!(err.line, 0, "whole-program failure has no line");
        assert!(err.to_string().contains("no 'qreg"));
    }

    #[test]
    fn out_of_range_qubits_are_errors_not_panics() {
        // The old Option parser panicked on these (Circuit::push asserts);
        // hostile network input must produce a clean error instead.
        let err = parse_qasm("qreg q[2];\nrz(0.3) q[5];").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("out of range"), "{err}");

        let err = parse_qasm("qreg q[2];\ncx q[0],q[7];").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("out of range"), "{err}");

        let err = parse_qasm("qreg q[2];\ncx q[1],q[1];").unwrap_err();
        assert!(err.message.contains("self-CNOT"), "{err}");
    }

    #[test]
    fn oversized_registers_are_rejected_cheaply() {
        // A 22-byte hostile request must not become a multi-hundred-GB
        // per-qubit scratch allocation downstream.
        let err = parse_qasm("qreg q[10000000000];").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("too large"), "{err}");
        // The boundary itself parses.
        let c = parse_qasm(&format!("qreg q[{MAX_QUBITS}];")).unwrap();
        assert_eq!(c.n_qubits(), MAX_QUBITS);
        assert!(parse_qasm(&format!("qreg q[{}];", MAX_QUBITS + 1)).is_err());
    }

    mod roundtrip_property {
        use super::*;
        use proptest::prelude::*;

        /// Raw instruction spec: an op selector plus more raw material
        /// than any op needs; `build` folds it into a valid instruction
        /// for the circuit's qubit count.
        type RawOp = (usize, usize, usize, f64, f64, f64);

        fn arb_circuit() -> impl Strategy<Value = Circuit> {
            let raw_op = (0usize..13, 0usize..8, 0usize..7, -7.0f64..7.0, -7.0f64..7.0, -7.0f64..7.0);
            (1usize..4, prop::collection::vec(raw_op, 0..24)).prop_map(build)
        }

        fn build((n, ops): (usize, Vec<RawOp>)) -> Circuit {
            let mut c = Circuit::new(n);
            for (kind, qa, qb, t, p, l) in ops {
                let q = qa % n;
                match kind {
                    0 => c.rz(q, t),
                    1 => c.rx(q, t),
                    2 => c.ry(q, t),
                    3 => c.u3(q, t, p, l),
                    4 => {
                        if n > 1 {
                            c.cx(q, (q + 1 + qb % (n - 1)) % n);
                        }
                    }
                    k => {
                        let g = [
                            Gate::H,
                            Gate::S,
                            Gate::Sdg,
                            Gate::T,
                            Gate::Tdg,
                            Gate::X,
                            Gate::Y,
                            Gate::Z,
                        ][(k - 5) % 8];
                        c.gate(q, g);
                    }
                }
            }
            c
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// parse(emit(c)) == c for random circuits: f64 angles survive
            /// because `Display` prints the shortest exactly-round-tripping
            /// decimal form.
            #[test]
            fn qasm_roundtrips(c in arb_circuit()) {
                let back = from_qasm(&to_qasm(&c)).expect("own output parses");
                prop_assert_eq!(back, c);
            }
        }
    }
}
