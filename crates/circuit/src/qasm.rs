//! OpenQASM 2.0 export.
//!
//! Lets synthesized circuits flow into external toolchains (Qiskit, PyZX,
//! staq …) for cross-validation. Only the gate set this workspace emits is
//! supported: `h s sdg t tdg x y z rz rx ry u3 cx`.

use crate::ir::{Circuit, Op};
use gates::Gate;
use std::fmt::Write;

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// ```
/// use circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let q = circuit::qasm::to_qasm(&c);
/// assert!(q.contains("h q[0];"));
/// assert!(q.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(c: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", c.n_qubits());
    for i in c.instrs() {
        match i.op {
            Op::Cx => {
                let _ = writeln!(out, "cx q[{}],q[{}];", i.q0, i.q1.expect("cx target"));
            }
            Op::Rz(a) => {
                let _ = writeln!(out, "rz({a}) q[{}];", i.q0);
            }
            Op::Rx(a) => {
                let _ = writeln!(out, "rx({a}) q[{}];", i.q0);
            }
            Op::Ry(a) => {
                let _ = writeln!(out, "ry({a}) q[{}];", i.q0);
            }
            Op::U3 { theta, phi, lambda } => {
                let _ = writeln!(out, "u3({theta},{phi},{lambda}) q[{}];", i.q0);
            }
            Op::Gate1(g) => {
                let name = match g {
                    Gate::H => "h",
                    Gate::S => "s",
                    Gate::Sdg => "sdg",
                    Gate::T => "t",
                    Gate::Tdg => "tdg",
                    Gate::X => "x",
                    Gate::Y => "y",
                    Gate::Z => "z",
                };
                let _ = writeln!(out, "{name} q[{}];", i.q0);
            }
        }
    }
    out
}

/// Parses the subset of OpenQASM 2.0 emitted by [`to_qasm`]. Returns
/// `None` on any unsupported construct (this is a round-trip aid, not a
/// general front end).
///
/// Real-world QASM 2.0 trimmings are tolerated without contributing
/// instructions: `//` comments (whole-line or trailing), blank lines, the
/// `OPENQASM 2.0;` version line, and an `include "qelib1.inc";` line.
pub fn from_qasm(src: &str) -> Option<Circuit> {
    let mut circuit: Option<Circuit> = None;
    for raw in src.lines() {
        // Comments run to end of line; `//` cannot occur inside any
        // supported statement (no string literals in this subset).
        let line = match raw.split_once("//") {
            Some((code, _)) => code.trim(),
            None => raw.trim(),
        };
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let line = line.strip_suffix(';')?;
        if let Some(rest) = line.strip_prefix("qreg q[") {
            let n: usize = rest.strip_suffix(']')?.parse().ok()?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit.as_mut()?;
        let (head, args) = line.split_once(" q[")?;
        if head == "cx" {
            // "cx q[a],q[b]" split differently: args = "a],q[b]".
            let (a, rest) = args.split_once("],q[")?;
            let b = rest.strip_suffix(']')?;
            c.cx(a.parse().ok()?, b.parse().ok()?);
            continue;
        }
        let q: usize = args.strip_suffix(']')?.parse().ok()?;
        if let Some(g) = match head {
            "h" => Some(Gate::H),
            "s" => Some(Gate::S),
            "sdg" => Some(Gate::Sdg),
            "t" => Some(Gate::T),
            "tdg" => Some(Gate::Tdg),
            "x" => Some(Gate::X),
            "y" => Some(Gate::Y),
            "z" => Some(Gate::Z),
            _ => None,
        } {
            c.gate(q, g);
            continue;
        }
        // Parametrized forms: name(params).
        let (name, params) = head.split_once('(')?;
        let params = params.strip_suffix(')')?;
        let vals: Vec<f64> = params
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .ok()?;
        match (name, vals.as_slice()) {
            ("rz", [a]) => c.rz(q, *a),
            ("rx", [a]) => c.rx(q, *a),
            ("ry", [a]) => c.ry(q, *a),
            ("u3", [t, p, l]) => c.u3(q, *t, *p, *l),
            _ => return None,
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        c.gate(1, Gate::Tdg);
        c.rz(2, 0.25);
        c.u3(0, 0.1, -0.2, 0.3);
        c.cx(0, 2);
        c.gate(2, Gate::Sdg);
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let q = to_qasm(&c);
        let back = from_qasm(&q).expect("own output parses");
        assert_eq!(back.n_qubits(), c.n_qubits());
        assert_eq!(back.len(), c.len());
        assert_eq!(back.instrs(), c.instrs());
    }

    #[test]
    fn header_and_register() {
        let q = to_qasm(&sample());
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_qasm("qreg q[2];\nfoo q[0];").is_none());
        assert!(from_qasm("h q[0];").is_none(), "missing qreg");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "OPENQASM 2.0;\n// a comment\n\nqreg q[1];\nh q[0];\n";
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn real_world_trimmings_tolerated() {
        // Trailing comments, indentation, blank lines, and the qelib
        // include — the shape of files Qiskit and hand authors produce.
        let src = "\
// exported by some toolchain
OPENQASM 2.0;
include \"qelib1.inc\";   // standard library

qreg q[2];  // two qubits
  h q[0];   // indented + trailing comment
cx q[0],q[1]; // entangle
// rz below
rz(0.25) q[1];
";
        let c = from_qasm(src).expect("real-world trimmings parse");
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn comment_only_and_empty_sources_have_no_register() {
        assert!(from_qasm("// nothing here\n\n").is_none());
        assert!(from_qasm("").is_none());
    }

    mod roundtrip_property {
        use super::*;
        use proptest::prelude::*;

        /// Raw instruction spec: an op selector plus more raw material
        /// than any op needs; `build` folds it into a valid instruction
        /// for the circuit's qubit count.
        type RawOp = (usize, usize, usize, f64, f64, f64);

        fn arb_circuit() -> impl Strategy<Value = Circuit> {
            let raw_op = (0usize..13, 0usize..8, 0usize..7, -7.0f64..7.0, -7.0f64..7.0, -7.0f64..7.0);
            (1usize..4, prop::collection::vec(raw_op, 0..24)).prop_map(build)
        }

        fn build((n, ops): (usize, Vec<RawOp>)) -> Circuit {
            let mut c = Circuit::new(n);
            for (kind, qa, qb, t, p, l) in ops {
                let q = qa % n;
                match kind {
                    0 => c.rz(q, t),
                    1 => c.rx(q, t),
                    2 => c.ry(q, t),
                    3 => c.u3(q, t, p, l),
                    4 => {
                        if n > 1 {
                            c.cx(q, (q + 1 + qb % (n - 1)) % n);
                        }
                    }
                    k => {
                        let g = [
                            Gate::H,
                            Gate::S,
                            Gate::Sdg,
                            Gate::T,
                            Gate::Tdg,
                            Gate::X,
                            Gate::Y,
                            Gate::Z,
                        ][(k - 5) % 8];
                        c.gate(q, g);
                    }
                }
            }
            c
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// parse(emit(c)) == c for random circuits: f64 angles survive
            /// because `Display` prints the shortest exactly-round-tripping
            /// decimal form.
            #[test]
            fn qasm_roundtrips(c in arb_circuit()) {
                let back = from_qasm(&to_qasm(&c)).expect("own output parses");
                prop_assert_eq!(back, c);
            }
        }
    }
}
