//! Circuit-wide application of a single-qubit synthesizer.
//!
//! Every remaining rotation in a lowered circuit is replaced by a discrete
//! Clifford+T sequence produced by a caller-supplied synthesizer (trasyn,
//! gridsynth, annealing, …). Identical rotations are synthesized once and
//! cached — application circuits repeat angles heavily (QAOA uses one γ/β
//! pair per layer), mirroring how real compilation pipelines batch
//! synthesis calls.
//!
//! The cache is pluggable via [`RotationCache`]: [`synthesize_circuit`]
//! uses a per-call [`LocalCache`], while the `engine` crate plugs in a
//! process-wide shared cache so distinct circuits, requests, and threads
//! amortize each other's synthesis work. Both paths key rotations with
//! [`quantize_unitary`], so cached entries mean the same thing everywhere.

use crate::basis::push_seq;
use crate::ir::{Circuit, Op};
use gates::GateSeq;
use qmath::Mat2;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// A cached synthesis result: the Clifford+T sequence and its unitary
/// distance from the rotation it replaces.
///
/// Results are reference-counted so that circuits which repeat a rotation
/// many times (QAOA repeats one γ/β pair per layer) splice the sequence
/// from a shared allocation instead of cloning it per occurrence.
pub type CachedSynthesis = Arc<(GateSeq, f64)>;

/// Outcome of synthesizing all rotations of a circuit.
#[derive(Clone, Debug)]
pub struct SynthesizedCircuit {
    /// The fully discrete circuit (`Gate1` + `Cx` only).
    pub circuit: Circuit,
    /// Sum of per-rotation synthesis errors (additive upper bound on the
    /// circuit-level error, §4.3).
    pub total_error: f64,
    /// Number of rotations that were synthesized (cache hits included).
    pub rotations: usize,
    /// Number of distinct rotations in this circuit (quantized with
    /// [`quantize_unitary`]) — counted per call, independent of what the
    /// cache already held. With the default [`LocalCache`] this equals
    /// the number of synthesizer invocations.
    pub distinct_rotations: usize,
}

/// A synthesis cache keyed by [`quantize_unitary`] keys.
///
/// Implementations decide the storage policy (per-call [`LocalCache`],
/// the `engine` crate's shared sharded cache, …); the contract is only
/// that the returned value is the synthesis for `key` — either recalled
/// or freshly produced by invoking `synth`. Distinct-rotation accounting
/// is done by [`synthesize_circuit_with`] itself, so it is independent of
/// whatever the cache already contains.
pub trait RotationCache {
    /// Serves `key` from the cache, invoking `synth` on a miss.
    fn get_or_synthesize(
        &mut self,
        key: [i64; 8],
        synth: &mut dyn FnMut() -> (GateSeq, f64),
    ) -> CachedSynthesis;
}

/// The default per-call cache: a plain `HashMap`. A fresh one is created
/// by every [`synthesize_circuit`] call, so nothing is shared across
/// circuits — use the `engine` crate when that sharing matters.
#[derive(Debug, Default)]
pub struct LocalCache {
    map: HashMap<[i64; 8], CachedSynthesis>,
}

impl LocalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached distinct rotations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl RotationCache for LocalCache {
    fn get_or_synthesize(
        &mut self,
        key: [i64; 8],
        synth: &mut dyn FnMut() -> (GateSeq, f64),
    ) -> CachedSynthesis {
        match self.map.entry(key) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => Arc::clone(v.insert(Arc::new(synth()))),
        }
    }
}

/// Replaces every rotation with the sequence returned by `synth`, which
/// receives the rotation's 2×2 unitary and must return `(sequence, error)`.
///
/// The synthesizer is invoked once per *distinct* rotation matrix (see
/// [`quantize_unitary`]); repeats are served from a per-call
/// [`LocalCache`] but still contribute their error to `total_error`.
/// This is a thin wrapper over [`synthesize_circuit_with`].
pub fn synthesize_circuit(
    c: &Circuit,
    synth: impl FnMut(&Mat2) -> (GateSeq, f64),
) -> SynthesizedCircuit {
    synthesize_circuit_with(c, synth, &mut LocalCache::new())
}

/// [`synthesize_circuit`] with an explicit, possibly shared, cache.
///
/// Repeated rotations splice their sequence from the cached
/// [`CachedSynthesis`] by reference — no gate sequence is cloned per
/// occurrence. The output is a pure function of the circuit and the
/// `(key → synthesis)` mapping, so pre-warming `cache` with entries a
/// deterministic `synth` would produce leaves the result byte-identical.
pub fn synthesize_circuit_with(
    c: &Circuit,
    mut synth: impl FnMut(&Mat2) -> (GateSeq, f64),
    cache: &mut dyn RotationCache,
) -> SynthesizedCircuit {
    let mut out = Circuit::new(c.n_qubits());
    let mut total_error = 0.0f64;
    let mut rotations = 0usize;
    let mut distinct = 0usize;
    let mut seen: std::collections::HashSet<[i64; 8]> = Default::default();
    for i in c.instrs() {
        match i.op {
            Op::Cx | Op::Gate1(_) => out.push(*i),
            op => {
                let m = op.matrix();
                let key = quantize_unitary(&m);
                if seen.insert(key) {
                    distinct += 1;
                }
                let entry = cache.get_or_synthesize(key, &mut || synth(&m));
                rotations += 1;
                total_error += entry.1;
                push_seq(&mut out, i.q0, &entry.0);
            }
        }
    }
    SynthesizedCircuit {
        circuit: out,
        total_error,
        rotations,
        distinct_rotations: distinct,
    }
}

/// Quantizes a 2×2 unitary into the synthesis-cache key shared by this
/// module and the `engine` crate's `SynthCache`.
///
/// The matrix is first phase-canonicalized ([`Mat2::phase_canonical`]),
/// then each entry's real and imaginary part is rounded to the nearest
/// multiple of 1e-12 (round half away from zero).
///
/// # Contract
///
/// * Two matrices mapping to the same key are entrywise within 1e-12 of
///   each other (up to global phase), far below every synthesis-error
///   threshold this workspace uses — conflating them is always safe.
/// * The converse does **not** hold at rounding boundaries: a component
///   lying within float noise of an odd multiple of 5e-13 may round
///   either way, so two unitaries closer than 1e-13 can still split into
///   two distinct keys. That splits costs a redundant synthesis call
///   (both entries are valid), never a wrong result. See the
///   `boundary_angles_may_split` test, which pins this behavior.
pub fn quantize_unitary(m: &Mat2) -> [i64; 8] {
    let c = m.phase_canonical();
    let mut out = [0i64; 8];
    for (i, z) in c.e.iter().enumerate() {
        out[2 * i] = (z.re * 1e12).round() as i64;
        out[2 * i + 1] = (z.im * 1e12).round() as i64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{rotation_count, t_count};
    use gates::Gate;

    /// A toy synthesizer: every rotation becomes T with error 0.25.
    fn toy(_m: &Mat2) -> (GateSeq, f64) {
        ([Gate::T].into_iter().collect(), 0.25)
    }

    #[test]
    fn replaces_all_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.rx(1, 0.7);
        let s = synthesize_circuit(&c, toy);
        assert_eq!(rotation_count(&s.circuit), 0);
        assert_eq!(t_count(&s.circuit), 2);
        assert_eq!(s.rotations, 2);
        assert!((s.total_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn caches_repeated_angles() {
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.rz(0, 0.31415);
        }
        let mut calls = 0usize;
        let s = synthesize_circuit(&c, |_m| {
            calls += 1;
            ([Gate::T].into_iter().collect(), 0.1)
        });
        assert_eq!(calls, 1, "identical rotations must hit the cache");
        assert_eq!(s.rotations, 5);
        assert_eq!(s.distinct_rotations, 1);
        assert!((s.total_error - 0.5).abs() < 1e-12, "errors still add up");
    }

    #[test]
    fn sequence_order_matches_circuit_time() {
        // Synthesizer returns [H, T] meaning operator H·T: in circuit time
        // T must come first.
        let mut c = Circuit::new(1);
        c.rz(0, 0.4);
        let s = synthesize_circuit(&c, |_m| {
            ([Gate::H, Gate::T].into_iter().collect(), 0.0)
        });
        let ops: Vec<Op> = s.circuit.instrs().iter().map(|i| i.op).collect();
        assert_eq!(ops, vec![Op::Gate1(Gate::T), Op::Gate1(Gate::H)]);
    }

    #[test]
    fn discrete_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.gate(0, Gate::S);
        let s = synthesize_circuit(&c, toy);
        assert_eq!(s.circuit.instrs()[0].op, Op::Gate1(Gate::S));
        assert_eq!(s.rotations, 0);
    }

    #[test]
    fn prewarmed_cache_matches_fresh_run() {
        let mut c = Circuit::new(2);
        for layer in 0..3 {
            c.rz(0, 0.3 + layer as f64 * 0.1);
            c.cx(0, 1);
            c.rx(1, 0.7);
        }
        let fresh = synthesize_circuit(&c, toy);
        // Warm a cache on one run, reuse it on a second: the synthesizer
        // must not be invoked again and the output must be identical.
        let mut cache = LocalCache::new();
        let _ = synthesize_circuit_with(&c, toy, &mut cache);
        let mut calls = 0usize;
        let warm = synthesize_circuit_with(
            &c,
            |m| {
                calls += 1;
                toy(m)
            },
            &mut cache,
        );
        assert_eq!(calls, 0, "warm cache serves every rotation");
        assert_eq!(warm.circuit, fresh.circuit);
        assert_eq!(warm.rotations, fresh.rotations);
        assert_eq!(
            warm.distinct_rotations, fresh.distinct_rotations,
            "distinct is per call, independent of prior cache contents"
        );
        assert!((warm.total_error - fresh.total_error).abs() < 1e-12);
    }

    #[test]
    fn quantize_is_phase_invariant() {
        let m = Mat2::u3(0.7, 0.3, -0.4);
        let shifted = m.scale(qmath::Complex64::cis(1.234));
        assert_eq!(quantize_unitary(&m), quantize_unitary(&shifted));
    }

    #[test]
    fn nearby_angles_share_a_key() {
        // Generic angles: a 1e-13 perturbation is far from the 5e-13
        // rounding boundary, so both land on the same key.
        for theta in [0.3f64, 0.7, -1.1, 2.5] {
            let a = Mat2::rz(theta);
            let b = Mat2::rz(theta + 1e-13);
            assert_eq!(
                quantize_unitary(&a),
                quantize_unitary(&b),
                "theta = {theta}"
            );
        }
    }

    #[test]
    fn boundary_angles_may_split() {
        // Pin the documented boundary behavior: a matrix component within
        // float noise of an odd multiple of 5e-13 (a rounding half-step)
        // can split angles differing by < 1e-13 into two keys. diag(1, z)
        // is already phase-canonical (first max-modulus entry is real
        // positive), so the key reads z directly.
        let z = |re: f64| {
            Mat2::new(
                qmath::Complex64::new(1.0, 0.0),
                qmath::Complex64::new(0.0, 0.0),
                qmath::Complex64::new(0.0, 0.0),
                qmath::Complex64::new(re, (1.0 - re * re).sqrt()),
            )
        };
        let just_below = z(4.999e-13); // rounds to 0
        let just_above = z(5.001e-13); // rounds to 1
        let ka = quantize_unitary(&just_below);
        let kb = quantize_unitary(&just_above);
        assert_eq!(ka[6], 0);
        assert_eq!(kb[6], 1);
        assert_ne!(ka, kb, "boundary-straddling inputs split; see contract");
        // Splitting is benign: both keys would map to valid syntheses.
    }
}
