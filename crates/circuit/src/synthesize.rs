//! Circuit-wide application of a single-qubit synthesizer.
//!
//! Every remaining rotation in a lowered circuit is replaced by a discrete
//! Clifford+T sequence produced by a caller-supplied synthesizer (trasyn,
//! gridsynth, annealing, …). Identical rotations are synthesized once and
//! cached — application circuits repeat angles heavily (QAOA uses one γ/β
//! pair per layer), mirroring how real compilation pipelines batch
//! synthesis calls.

use crate::basis::push_seq;
use crate::ir::{Circuit, Op};
use gates::GateSeq;
use qmath::Mat2;
use std::collections::HashMap;

/// Outcome of synthesizing all rotations of a circuit.
#[derive(Clone, Debug)]
pub struct SynthesizedCircuit {
    /// The fully discrete circuit (`Gate1` + `Cx` only).
    pub circuit: Circuit,
    /// Sum of per-rotation synthesis errors (additive upper bound on the
    /// circuit-level error, §4.3).
    pub total_error: f64,
    /// Number of rotations that were synthesized (cache hits included).
    pub rotations: usize,
    /// Number of distinct rotations (synthesizer invocations).
    pub distinct_rotations: usize,
}

/// Replaces every rotation with the sequence returned by `synth`, which
/// receives the rotation's 2×2 unitary and must return `(sequence, error)`.
///
/// The synthesizer is invoked once per *distinct* rotation matrix
/// (quantized to 1e-12); repeats are served from a cache but still
/// contribute their error to `total_error`.
pub fn synthesize_circuit(
    c: &Circuit,
    mut synth: impl FnMut(&Mat2) -> (GateSeq, f64),
) -> SynthesizedCircuit {
    let mut out = Circuit::new(c.n_qubits());
    let mut cache: HashMap<[i64; 8], (GateSeq, f64)> = HashMap::new();
    let mut total_error = 0.0f64;
    let mut rotations = 0usize;
    let mut distinct = 0usize;
    for i in c.instrs() {
        match i.op {
            Op::Cx | Op::Gate1(_) => out.push(*i),
            op => {
                let m = op.matrix();
                let key = quantize(&m);
                let (seq, err) = cache
                    .entry(key)
                    .or_insert_with(|| {
                        distinct += 1;
                        synth(&m)
                    })
                    .clone();
                rotations += 1;
                total_error += err;
                push_seq(&mut out, i.q0, &seq);
            }
        }
    }
    SynthesizedCircuit {
        circuit: out,
        total_error,
        rotations,
        distinct_rotations: distinct,
    }
}

fn quantize(m: &Mat2) -> [i64; 8] {
    let c = m.phase_canonical();
    let mut out = [0i64; 8];
    for (i, z) in c.e.iter().enumerate() {
        out[2 * i] = (z.re * 1e12).round() as i64;
        out[2 * i + 1] = (z.im * 1e12).round() as i64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{rotation_count, t_count};
    use gates::Gate;

    /// A toy synthesizer: every rotation becomes T with error 0.25.
    fn toy(_m: &Mat2) -> (GateSeq, f64) {
        ([Gate::T].into_iter().collect(), 0.25)
    }

    #[test]
    fn replaces_all_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.rx(1, 0.7);
        let s = synthesize_circuit(&c, toy);
        assert_eq!(rotation_count(&s.circuit), 0);
        assert_eq!(t_count(&s.circuit), 2);
        assert_eq!(s.rotations, 2);
        assert!((s.total_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn caches_repeated_angles() {
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.rz(0, 0.31415);
        }
        let mut calls = 0usize;
        let s = synthesize_circuit(&c, |_m| {
            calls += 1;
            ([Gate::T].into_iter().collect(), 0.1)
        });
        assert_eq!(calls, 1, "identical rotations must hit the cache");
        assert_eq!(s.rotations, 5);
        assert_eq!(s.distinct_rotations, 1);
        assert!((s.total_error - 0.5).abs() < 1e-12, "errors still add up");
    }

    #[test]
    fn sequence_order_matches_circuit_time() {
        // Synthesizer returns [H, T] meaning operator H·T: in circuit time
        // T must come first.
        let mut c = Circuit::new(1);
        c.rz(0, 0.4);
        let s = synthesize_circuit(&c, |_m| {
            ([Gate::H, Gate::T].into_iter().collect(), 0.0)
        });
        let ops: Vec<Op> = s.circuit.instrs().iter().map(|i| i.op).collect();
        assert_eq!(ops, vec![Op::Gate1(Gate::T), Op::Gate1(Gate::H)]);
    }

    #[test]
    fn discrete_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.gate(0, Gate::S);
        let s = synthesize_circuit(&c, toy);
        assert_eq!(s.circuit.instrs()[0].op, Op::Gate1(Gate::S));
        assert_eq!(s.rotations, 0);
    }
}
