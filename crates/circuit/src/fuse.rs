//! Single-qubit gate fusion into `U3` (the merge pass of §3.4).
//!
//! Walks the instruction list keeping one pending 2×2 matrix per qubit;
//! any run of adjacent single-qubit gates collapses into a single `U3`
//! instruction (or nothing, if the run is the identity). This is what
//! makes the `U3` IR strictly coarser than the `Rz` IR: `Rx·Rz`, `Rz·H·Rz`
//! etc. all become one rotation.

use crate::ir::{Circuit, Instr, Op};
use qmath::euler::decompose_u3;
use qmath::Mat2;

/// Fuses every maximal run of adjacent single-qubit gates into one `U3`.
///
/// Identity runs (within tolerance) are dropped entirely. Two-qubit gates
/// are barriers: a run ends when its qubit participates in a CNOT.
pub fn fuse_single_qubit(c: &Circuit) -> Circuit {
    let mut out = Vec::with_capacity(c.len());
    let mut pending = vec![None; c.n_qubits()];
    fuse_into(c, &mut out, &mut pending);
    Circuit::from_instrs(c.n_qubits(), out)
}

/// Core of [`fuse_single_qubit`], writing into caller-owned buffers so the
/// pass pipeline can reuse them across stages. `out` is cleared; `pending`
/// is resized to the qubit count and cleared.
pub(crate) fn fuse_into(c: &Circuit, out: &mut Vec<Instr>, pending: &mut Vec<Option<Mat2>>) {
    out.clear();
    pending.clear();
    pending.resize(c.n_qubits(), None);

    let flush = |out: &mut Vec<Instr>, pending: &mut Vec<Option<Mat2>>, q: usize| {
        if let Some(m) = pending[q].take() {
            if let Some(instr) = matrix_to_instr(q, &m) {
                out.push(instr);
            }
        }
    };

    for i in c.instrs() {
        match i.op {
            Op::Cx => {
                let t = i.q1.expect("cx has a target");
                flush(out, pending, i.q0);
                flush(out, pending, t);
                out.push(*i);
            }
            op => {
                let m = op.matrix();
                let acc = pending[i.q0].take().unwrap_or_else(Mat2::identity);
                // Circuit time flows left to right, so a later gate
                // multiplies on the LEFT of the accumulated operator.
                pending[i.q0] = Some(m * acc);
            }
        }
    }
    for q in 0..c.n_qubits() {
        flush(out, pending, q);
    }
}

/// Converts an accumulated 2×2 unitary into an instruction, dropping
/// identities.
fn matrix_to_instr(q: usize, m: &Mat2) -> Option<Instr> {
    if m.approx_eq_phase(&Mat2::identity(), 1e-10) {
        return None;
    }
    let a = decompose_u3(m);
    Some(Instr {
        op: Op::U3 {
            theta: a.theta,
            phi: a.phi,
            lambda: a.lambda,
        },
        q0: q,
        q1: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rotation_count;
    use gates::Gate;

    #[test]
    fn adjacent_rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3);
        c.rx(0, 0.5);
        c.rz(0, -0.2);
        let f = fuse_single_qubit(&c);
        assert_eq!(f.len(), 1);
        assert!(matches!(f.instrs()[0].op, Op::U3 { .. }));
    }

    #[test]
    fn fusion_preserves_the_operator() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3);
        c.h(0);
        c.rx(0, 0.5);
        let f = fuse_single_qubit(&c);
        assert_eq!(f.len(), 1);
        // Circuit time: Rz first ⇒ operator = Rx·H·Rz.
        let want = Mat2::rx(0.5) * Mat2::h() * Mat2::rz(0.3);
        assert!(f.instrs()[0].op.matrix().approx_eq_phase(&want, 1e-9));
    }

    #[test]
    fn cnot_is_a_barrier() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.rz(0, 0.4);
        let f = fuse_single_qubit(&c);
        // Two separate rotations remain.
        assert_eq!(rotation_count(&f), 2);
    }

    #[test]
    fn identity_runs_vanish() {
        let mut c = Circuit::new(1);
        c.gate(0, Gate::H);
        c.gate(0, Gate::H);
        let f = fuse_single_qubit(&c);
        assert!(f.is_empty());
        let mut c2 = Circuit::new(1);
        c2.rz(0, 0.7);
        c2.rz(0, -0.7);
        assert!(fuse_single_qubit(&c2).is_empty());
    }

    #[test]
    fn rotations_on_different_qubits_do_not_merge() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.rz(1, 0.4);
        let f = fuse_single_qubit(&c);
        assert_eq!(f.len(), 2);
    }
}
