//! The lowering pass pipeline: named, instrumented, configurable.
//!
//! The paper's compilation study is a search over *sequences of transpile
//! passes* (fuse, commute, CX-pair cancellation, basis choice, ZX phase
//! folding). This module makes that sequence a first-class value instead
//! of a hard-coded ladder:
//!
//! * [`Pass`] — one in-place circuit transformation with a stable name and
//!   per-run instrumentation ([`PassStats`]: wall time, instruction and
//!   rotation counts before → after);
//! * [`PassSpec`] — the declarative identity of a pass (`fuse`,
//!   `commute`, `cx-cancel`, `zx-fold`, `basis=u3`, `basis=rz`);
//! * [`Preset`] — the five named pipelines (`none`, `fast`, `default`,
//!   `aggressive`, `zx`);
//! * [`PipelineSpec`] — a preset *or* a custom pass list, parsed from a
//!   spec string like `"commute,fuse,cx-cancel,basis=u3"`, with a
//!   canonical [`std::fmt::Display`] form;
//! * [`Pipeline`] — the runnable form: boxed passes with scratch buffers
//!   that are reused across stages, so lowering no longer allocates a
//!   fresh [`Circuit`] per stage.
//!
//! The `zx-fold` pass needs the `zxopt` crate, which depends on this one;
//! to keep the dependency graph acyclic, [`Pipeline::from_spec`] builds
//! only the built-in passes and [`Pipeline::from_spec_with`] accepts a
//! resolver for external adapters. The `engine` crate's `build_pipeline`
//! is the one resolver every production surface (CLI, server, repro)
//! shares, which is what makes equal specs produce bit-identical circuits
//! across all of them.

use crate::commute::commute_rotations_in_place;
use crate::fuse::fuse_into;
use crate::ir::{Circuit, Instr, Op};
use crate::levels::Basis;
use crate::metrics::rotation_count;
use qmath::Mat2;
use std::fmt;
use std::time::Instant;

/// Instrumentation for one pass execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PassStats {
    /// The pass's stable name (its [`PassSpec`] token).
    pub name: &'static str,
    /// Wall-clock milliseconds spent in the pass.
    pub wall_ms: f64,
    /// Instruction count entering the pass.
    pub instrs_before: usize,
    /// Instruction count leaving the pass.
    pub instrs_after: usize,
    /// Nontrivial-rotation count entering the pass.
    pub rotations_before: usize,
    /// Nontrivial-rotation count leaving the pass.
    pub rotations_after: usize,
}

/// One in-place circuit transformation.
///
/// `apply` does the work; the provided [`Pass::run`] wraps it with the
/// standard instrumentation. Methods take `&mut self` so passes can own
/// scratch buffers and reuse them across invocations.
pub trait Pass {
    /// Stable name — the token [`PipelineSpec::parse`] accepts.
    fn name(&self) -> &'static str;

    /// Transforms the circuit in place.
    fn apply(&mut self, c: &mut Circuit);

    /// Runs the pass with instrumentation: wall time plus instruction and
    /// rotation counts before → after.
    fn run(&mut self, c: &mut Circuit) -> PassStats {
        let instrs_before = c.len();
        let rotations_before = rotation_count(c);
        let t0 = Instant::now();
        self.apply(c);
        PassStats {
            name: self.name(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            instrs_before,
            instrs_after: c.len(),
            rotations_before,
            rotations_after: rotation_count(c),
        }
    }
}

/// The declarative identity of a pass: what a spec string names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassSpec {
    /// Push `Rz`/`Rx` through CNOTs toward merge partners
    /// ([`crate::commute::commute_rotations`]).
    Commute,
    /// Fuse adjacent single-qubit gates into one `U3`
    /// ([`crate::fuse::fuse_single_qubit`]).
    Fuse,
    /// Cancel immediately-adjacent identical CNOT pairs.
    CxCancel,
    /// ZX-style phase folding (`zxopt`); needs an external adapter, see
    /// [`Pipeline::from_spec_with`].
    ZxFold,
    /// Lower to one of the two intermediate representations
    /// ([`crate::basis`]).
    Basis(Basis),
}

impl PassSpec {
    /// The spec-string token for this pass.
    pub fn token(&self) -> &'static str {
        match self {
            PassSpec::Commute => "commute",
            PassSpec::Fuse => "fuse",
            PassSpec::CxCancel => "cx-cancel",
            PassSpec::ZxFold => "zx-fold",
            PassSpec::Basis(Basis::U3) => "basis=u3",
            PassSpec::Basis(Basis::Rz) => "basis=rz",
        }
    }

    /// Parses one spec-string token.
    pub fn parse(tok: &str) -> Option<PassSpec> {
        match tok {
            "commute" => Some(PassSpec::Commute),
            "fuse" => Some(PassSpec::Fuse),
            "cx-cancel" => Some(PassSpec::CxCancel),
            "zx-fold" => Some(PassSpec::ZxFold),
            "basis=u3" => Some(PassSpec::Basis(Basis::U3)),
            "basis=rz" => Some(PassSpec::Basis(Basis::Rz)),
            _ => None,
        }
    }
}

/// The named pipeline presets.
///
/// Presets are *basis-parametric*: `fast`, `default`, and `aggressive`
/// lower to whichever basis the consumer asks for (the synthesis
/// backend's preferred IR), while `zx` always lowers to `Clifford+Rz`
/// because phase folding tracks diagonal phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// No lowering at all: synthesize the circuit as-is.
    None,
    /// One fusion sweep, then the basis lowering.
    Fast,
    /// Commutation, fusion, CX-pair cancellation, re-fusion, basis
    /// lowering — the paper's level-2-with-commutation recipe.
    Default,
    /// [`Preset::Default`] plus a second commute+fuse round (level 3).
    Aggressive,
    /// [`Preset::Default`] lowered to `Clifford+Rz`, then ZX phase
    /// folding — the first time the `zxopt` optimizer sits on the
    /// production compile path.
    Zx,
}

impl Preset {
    /// All presets, in documentation order.
    pub const ALL: [Preset; 5] = [
        Preset::None,
        Preset::Fast,
        Preset::Default,
        Preset::Aggressive,
        Preset::Zx,
    ];

    /// Stable lowercase label (the spec string that names this preset).
    pub fn label(&self) -> &'static str {
        match self {
            Preset::None => "none",
            Preset::Fast => "fast",
            Preset::Default => "default",
            Preset::Aggressive => "aggressive",
            Preset::Zx => "zx",
        }
    }

    /// Parses a [`Preset::label`] string.
    pub fn parse(s: &str) -> Option<Preset> {
        match s {
            "none" => Some(Preset::None),
            "fast" => Some(Preset::Fast),
            "default" => Some(Preset::Default),
            "aggressive" => Some(Preset::Aggressive),
            "zx" => Some(Preset::Zx),
            _ => None,
        }
    }

    /// Expands the preset into a concrete pass list for `basis`.
    pub fn expand(&self, basis: Basis) -> Vec<PassSpec> {
        use PassSpec::*;
        match self {
            Preset::None => vec![],
            Preset::Fast => vec![Fuse, Basis(basis)],
            Preset::Default => vec![Commute, Fuse, CxCancel, Fuse, Basis(basis)],
            Preset::Aggressive => {
                vec![Commute, Fuse, CxCancel, Fuse, Commute, Fuse, Basis(basis)]
            }
            Preset::Zx => vec![
                Commute,
                Fuse,
                CxCancel,
                Fuse,
                Basis(crate::levels::Basis::Rz),
                ZxFold,
            ],
        }
    }
}

/// A parsed pipeline description: a named preset or an explicit pass
/// list. This is the value that travels through `BatchItem`s, JSON
/// requests, and CLI flags; [`Pipeline`] is its runnable form.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PipelineSpec {
    /// One of the five named presets.
    Preset(Preset),
    /// An explicit, ordered pass list.
    Custom(Vec<PassSpec>),
}

impl Default for PipelineSpec {
    /// The `default` preset — what a bare compile request gets.
    fn default() -> Self {
        PipelineSpec::Preset(Preset::Default)
    }
}

/// A spec string that names no preset and no pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineSpecError {
    /// The offending token.
    pub token: String,
}

impl fmt::Display for PipelineSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown pipeline pass or preset '{}' (presets: none, fast, default, aggressive, \
             zx; passes: commute, fuse, cx-cancel, zx-fold, basis=u3, basis=rz)",
            self.token
        )
    }
}

impl std::error::Error for PipelineSpecError {}

impl PipelineSpec {
    /// The empty pipeline (`none` — compile as-is).
    pub fn none() -> Self {
        PipelineSpec::Preset(Preset::None)
    }

    /// Parses a spec string: a preset name, or a comma-separated pass
    /// list (e.g. `"commute,fuse,cx-cancel,basis=u3"`). Whitespace around
    /// tokens is ignored; the empty string is [`Preset::None`].
    pub fn parse(s: &str) -> Result<PipelineSpec, PipelineSpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(PipelineSpec::none());
        }
        if let Some(p) = Preset::parse(s) {
            return Ok(PipelineSpec::Preset(p));
        }
        let mut passes = Vec::new();
        for tok in s.split(',') {
            let tok = tok.trim();
            passes.push(PassSpec::parse(tok).ok_or_else(|| PipelineSpecError {
                token: tok.to_string(),
            })?);
        }
        Ok(PipelineSpec::Custom(passes))
    }

    /// The concrete pass list this spec means when lowering for `basis`.
    pub fn passes(&self, basis: Basis) -> Vec<PassSpec> {
        match self {
            PipelineSpec::Preset(p) => p.expand(basis),
            PipelineSpec::Custom(v) => v.clone(),
        }
    }

    /// `true` when the spec runs no passes at all for `basis`.
    pub fn is_empty(&self, basis: Basis) -> bool {
        self.passes(basis).is_empty()
    }
}

impl fmt::Display for PipelineSpec {
    /// The canonical spec string: a preset label, or the comma-joined
    /// pass tokens. `parse(x.to_string()) == x` for every value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineSpec::Preset(p) => f.write_str(p.label()),
            PipelineSpec::Custom(v) => {
                let toks: Vec<&str> = v.iter().map(|p| p.token()).collect();
                f.write_str(&toks.join(","))
            }
        }
    }
}

/// A [`PipelineSpec`] pass with no builder in scope (today: `zx-fold`
/// outside the engine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnresolvedPass {
    /// The pass that could not be built.
    pub pass: PassSpec,
}

impl fmt::Display for UnresolvedPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass '{}' needs an external adapter (build the pipeline through the engine)",
            self.pass.token()
        )
    }
}

impl std::error::Error for UnresolvedPass {}

/// The runnable pipeline: an ordered list of passes, each owning its
/// scratch buffers.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("Pipeline").field("passes", &names).finish()
    }
}

impl Pipeline {
    /// Wraps an explicit pass list.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Self {
        Pipeline { passes }
    }

    /// Builds the pipeline for `spec`, lowering for `basis`, using only
    /// this crate's built-in passes. Fails with [`UnresolvedPass`] on
    /// `zx-fold` (see [`Pipeline::from_spec_with`]).
    pub fn from_spec(spec: &PipelineSpec, basis: Basis) -> Result<Pipeline, UnresolvedPass> {
        Pipeline::from_spec_with(spec, basis, |_| None)
    }

    /// Builds the pipeline for `spec`, consulting `resolve` first for
    /// every pass so downstream crates can supply adapters (the engine
    /// maps [`PassSpec::ZxFold`] to `zxopt`); passes `resolve` declines
    /// fall back to the built-ins.
    pub fn from_spec_with(
        spec: &PipelineSpec,
        basis: Basis,
        mut resolve: impl FnMut(PassSpec) -> Option<Box<dyn Pass>>,
    ) -> Result<Pipeline, UnresolvedPass> {
        let mut passes: Vec<Box<dyn Pass>> = Vec::new();
        for p in spec.passes(basis) {
            match resolve(p).or_else(|| Self::builtin(p)) {
                Some(b) => passes.push(b),
                None => return Err(UnresolvedPass { pass: p }),
            }
        }
        Ok(Pipeline { passes })
    }

    /// The built-in implementation of a pass, `None` for passes that live
    /// outside this crate (`zx-fold`).
    pub fn builtin(spec: PassSpec) -> Option<Box<dyn Pass>> {
        match spec {
            PassSpec::Commute => Some(Box::new(CommutePass)),
            PassSpec::Fuse => Some(Box::<FusePass>::default()),
            PassSpec::CxCancel => Some(Box::new(CxCancelPass)),
            PassSpec::Basis(b) => Some(Box::new(BasisPass::new(b))),
            PassSpec::ZxFold => None,
        }
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// `true` for the empty (`none`) pipeline.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order, in place, returning one [`PassStats`]
    /// per pass.
    pub fn run(&mut self, c: &mut Circuit) -> Vec<PassStats> {
        self.run_observed(c, |_, _| {})
    }

    /// [`Pipeline::run`] with a between-stages hook: after each pass,
    /// `observe` sees that pass's [`PassStats`] and the circuit as the
    /// next stage will receive it. This is the seam static checkers hang
    /// off of (the `lint` crate's `CheckedPipeline` verifies each pass's
    /// declared postconditions here); the observer cannot mutate the
    /// circuit, so observed and unobserved runs are bit-identical.
    pub fn run_observed(
        &mut self,
        c: &mut Circuit,
        mut observe: impl FnMut(&PassStats, &Circuit),
    ) -> Vec<PassStats> {
        self.passes
            .iter_mut()
            .map(|p| {
                let stats = p.run(c);
                observe(&stats, c);
                stats
            })
            .collect()
    }
}

/// The `commute` pass: in-place swap sweeps, zero allocation.
struct CommutePass;

impl Pass for CommutePass {
    fn name(&self) -> &'static str {
        PassSpec::Commute.token()
    }

    fn apply(&mut self, c: &mut Circuit) {
        commute_rotations_in_place(c);
    }
}

/// The `fuse` pass; owns the output and per-qubit accumulator buffers and
/// reuses them across runs.
#[derive(Default)]
struct FusePass {
    out: Vec<Instr>,
    pending: Vec<Option<Mat2>>,
}

impl Pass for FusePass {
    fn name(&self) -> &'static str {
        PassSpec::Fuse.token()
    }

    fn apply(&mut self, c: &mut Circuit) {
        fuse_into(c, &mut self.out, &mut self.pending);
        // Swap the fused list in; next run reuses the old allocation.
        std::mem::swap(c.raw_instrs_mut(), &mut self.out);
    }
}

/// The `cx-cancel` pass: compacts the instruction list in place with a
/// read/write cursor pair, zero allocation.
struct CxCancelPass;

impl Pass for CxCancelPass {
    fn name(&self) -> &'static str {
        PassSpec::CxCancel.token()
    }

    fn apply(&mut self, c: &mut Circuit) {
        let instrs = c.raw_instrs_mut();
        let mut w = 0usize; // instrs[..w] is the compacted prefix
        for r in 0..instrs.len() {
            let i = instrs[r];
            if i.op == Op::Cx && w > 0 {
                let last = instrs[w - 1];
                if last.op == Op::Cx && last.q0 == i.q0 && last.q1 == i.q1 {
                    w -= 1; // the pair annihilates
                    continue;
                }
            }
            instrs[w] = i;
            w += 1;
        }
        instrs.truncate(w);
    }
}

/// A `basis=…` pass; owns a scratch circuit reused across runs.
struct BasisPass {
    basis: Basis,
    scratch: Circuit,
}

impl BasisPass {
    fn new(basis: Basis) -> Self {
        BasisPass {
            basis,
            scratch: Circuit::default(),
        }
    }
}

impl Pass for BasisPass {
    fn name(&self) -> &'static str {
        PassSpec::Basis(self.basis).token()
    }

    fn apply(&mut self, c: &mut Circuit) {
        self.scratch.reset(c.n_qubits());
        match self.basis {
            Basis::U3 => crate::basis::lower_u3_into(c, &mut self.scratch),
            Basis::Rz => crate::basis::lower_rz_into(c, &mut self.scratch),
        }
        // Same qubit count on both sides, so swapping the raw lists keeps
        // every invariant; the scratch keeps the old allocation.
        std::mem::swap(c.raw_instrs_mut(), self.scratch.raw_instrs_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{to_rz_basis, to_u3_basis};
    use crate::commute::commute_rotations;
    use crate::fuse::fuse_single_qubit;
    use crate::metrics::cx_count;

    fn sample() -> Circuit {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.rx(1, 0.7);
        c.cx(0, 1);
        c.rz(0, 0.4);
        c.rx(1, 0.2);
        c.cx(0, 1);
        c.cx(0, 1);
        c
    }

    #[test]
    fn spec_strings_roundtrip() {
        for s in [
            "none",
            "fast",
            "default",
            "aggressive",
            "zx",
            "fuse",
            "commute,fuse,cx-cancel,zx-fold,basis=u3",
            "basis=rz",
        ] {
            let spec = PipelineSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(PipelineSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Whitespace tolerated, canonicalized away.
        assert_eq!(
            PipelineSpec::parse(" fuse , basis=u3 ").unwrap().to_string(),
            "fuse,basis=u3"
        );
        assert_eq!(PipelineSpec::parse(""), Ok(PipelineSpec::none()));
    }

    #[test]
    fn unknown_tokens_are_errors() {
        let err = PipelineSpec::parse("fuse,frobnicate").unwrap_err();
        assert_eq!(err.token, "frobnicate");
        assert!(err.to_string().contains("frobnicate"));
        assert!(PipelineSpec::parse("Default").is_err(), "case-sensitive");
    }

    #[test]
    fn presets_expand_per_basis() {
        assert!(Preset::None.expand(Basis::U3).is_empty());
        assert_eq!(
            Preset::Fast.expand(Basis::Rz),
            vec![PassSpec::Fuse, PassSpec::Basis(Basis::Rz)]
        );
        let zx = Preset::Zx.expand(Basis::U3);
        assert_eq!(zx.last(), Some(&PassSpec::ZxFold));
        assert!(
            zx.contains(&PassSpec::Basis(Basis::Rz)),
            "zx folds diagonal phases, so it always lowers to Rz"
        );
    }

    #[test]
    fn passes_match_their_functional_forms() {
        let c = sample();

        let mut work = c.clone();
        Pipeline::from_spec(&PipelineSpec::parse("commute").unwrap(), Basis::U3)
            .unwrap()
            .run(&mut work);
        assert_eq!(work, commute_rotations(&c));

        let mut work = c.clone();
        Pipeline::from_spec(&PipelineSpec::parse("fuse").unwrap(), Basis::U3)
            .unwrap()
            .run(&mut work);
        assert_eq!(work, fuse_single_qubit(&c));

        let mut work = c.clone();
        Pipeline::from_spec(&PipelineSpec::parse("basis=u3").unwrap(), Basis::U3)
            .unwrap()
            .run(&mut work);
        assert_eq!(work, to_u3_basis(&c));

        let mut work = c.clone();
        Pipeline::from_spec(&PipelineSpec::parse("basis=rz").unwrap(), Basis::U3)
            .unwrap()
            .run(&mut work);
        assert_eq!(work, to_rz_basis(&c));
    }

    #[test]
    fn cx_cancel_compacts_in_place() {
        let c = sample();
        let mut work = c.clone();
        Pipeline::from_spec(&PipelineSpec::parse("cx-cancel").unwrap(), Basis::U3)
            .unwrap()
            .run(&mut work);
        assert_eq!(cx_count(&work), 1, "{work}");
        assert_eq!(work.len(), c.len() - 2);
        // Non-adjacent and non-identical CNOTs survive.
        let mut c2 = Circuit::new(3);
        c2.cx(0, 1);
        c2.cx(1, 0);
        c2.cx(0, 2);
        let mut w2 = c2.clone();
        Pipeline::from_spec(&PipelineSpec::parse("cx-cancel").unwrap(), Basis::U3)
            .unwrap()
            .run(&mut w2);
        assert_eq!(w2, c2);
    }

    #[test]
    fn stats_record_counts_and_names() {
        let c = sample();
        let mut work = c.clone();
        let spec = PipelineSpec::Preset(Preset::Default);
        let stats = Pipeline::from_spec(&spec, Basis::U3).unwrap().run(&mut work);
        assert_eq!(
            stats.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["commute", "fuse", "cx-cancel", "fuse", "basis=u3"]
        );
        assert_eq!(stats[0].instrs_before, c.len());
        for w in stats.windows(2) {
            assert_eq!(w[0].instrs_after, w[1].instrs_before, "stages chain");
            assert_eq!(w[0].rotations_after, w[1].rotations_before);
        }
        assert_eq!(stats.last().unwrap().instrs_after, work.len());
        assert_eq!(
            stats.last().unwrap().rotations_after,
            rotation_count(&work)
        );
    }

    #[test]
    fn zx_fold_is_unresolved_without_an_adapter() {
        let spec = PipelineSpec::parse("zx-fold").unwrap();
        let err = Pipeline::from_spec(&spec, Basis::U3).unwrap_err();
        assert_eq!(err.pass, PassSpec::ZxFold);
        assert!(err.to_string().contains("zx-fold"));
    }

    #[test]
    fn resolver_can_supply_external_passes() {
        struct Noop;
        impl Pass for Noop {
            fn name(&self) -> &'static str {
                "zx-fold"
            }
            fn apply(&mut self, _c: &mut Circuit) {}
        }
        let spec = PipelineSpec::parse("zx-fold").unwrap();
        let mut p = Pipeline::from_spec_with(&spec, Basis::U3, |s| match s {
            PassSpec::ZxFold => Some(Box::new(Noop)),
            _ => None,
        })
        .unwrap();
        let mut c = sample();
        let stats = p.run(&mut c);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "zx-fold");
    }

    #[test]
    fn pipeline_reuses_buffers_across_runs() {
        // Running the same pipeline twice must be idempotent on outputs
        // (the scratch-swap plumbing must not leak stale instructions).
        let spec = PipelineSpec::Preset(Preset::Aggressive);
        let mut p = Pipeline::from_spec(&spec, Basis::U3).unwrap();
        let mut a = sample();
        p.run(&mut a);
        let mut b = sample();
        p.run(&mut b);
        assert_eq!(a, b);
        // And on a circuit of a different size.
        let mut small = Circuit::new(1);
        small.rz(0, 0.2);
        small.rx(0, 0.1);
        p.run(&mut small);
        assert_eq!(small.n_qubits(), 1);
        assert_eq!(rotation_count(&small), 1);
    }
}
