//! The circuit intermediate representation.

use gates::Gate;
use qmath::Mat2;
use std::fmt;

/// A circuit operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Z rotation by an angle.
    Rz(f64),
    /// X rotation by an angle.
    Rx(f64),
    /// Y rotation by an angle.
    Ry(f64),
    /// General single-qubit unitary in the `U3` convention.
    U3 {
        /// Polar angle.
        theta: f64,
        /// First azimuthal angle.
        phi: f64,
        /// Second azimuthal angle.
        lambda: f64,
    },
    /// A discrete Clifford+T gate.
    Gate1(Gate),
    /// Controlled-NOT (`q0` control, `q1` target).
    Cx,
}

impl Op {
    /// `true` for any parametrized single-qubit rotation (`Rz/Rx/Ry/U3`).
    pub fn is_rotation(&self) -> bool {
        matches!(self, Op::Rz(_) | Op::Rx(_) | Op::Ry(_) | Op::U3 { .. })
    }

    /// The 2×2 matrix of a single-qubit op.
    ///
    /// # Panics
    ///
    /// Panics on [`Op::Cx`].
    pub fn matrix(&self) -> Mat2 {
        match *self {
            Op::Rz(a) => Mat2::rz(a),
            Op::Rx(a) => Mat2::rx(a),
            Op::Ry(a) => Mat2::ry(a),
            Op::U3 { theta, phi, lambda } => Mat2::u3(theta, phi, lambda),
            Op::Gate1(g) => g.matrix(),
            Op::Cx => panic!("Cx has no single-qubit matrix"),
        }
    }
}

/// One instruction: an op applied to one or two qubits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// First (or only) qubit; the control for [`Op::Cx`].
    pub q0: usize,
    /// Second qubit (the CNOT target), `None` for single-qubit ops.
    pub q1: Option<usize>,
}

/// A quantum circuit over `n` qubits: an ordered instruction list.
///
/// Instructions apply left to right in *circuit time* (the first
/// instruction acts on the state first) — note this is the opposite of the
/// matrix-product convention used by [`gates::GateSeq`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    instrs: Vec<Instr>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            instrs: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The instruction list.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Total instruction count.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when there are no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends an arbitrary instruction.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range or a CNOT touches one qubit
    /// twice.
    pub fn push(&mut self, instr: Instr) {
        assert!(instr.q0 < self.n_qubits, "qubit out of range");
        if let Some(q1) = instr.q1 {
            assert!(q1 < self.n_qubits, "qubit out of range");
            assert_ne!(instr.q0, q1, "two-qubit gate needs distinct qubits");
        }
        self.instrs.push(instr);
    }

    /// Appends `Rz(angle)` on `q`.
    pub fn rz(&mut self, q: usize, angle: f64) {
        self.push(Instr {
            op: Op::Rz(angle),
            q0: q,
            q1: None,
        });
    }

    /// Appends `Rx(angle)` on `q`.
    pub fn rx(&mut self, q: usize, angle: f64) {
        self.push(Instr {
            op: Op::Rx(angle),
            q0: q,
            q1: None,
        });
    }

    /// Appends `Ry(angle)` on `q`.
    pub fn ry(&mut self, q: usize, angle: f64) {
        self.push(Instr {
            op: Op::Ry(angle),
            q0: q,
            q1: None,
        });
    }

    /// Appends `U3(θ, φ, λ)` on `q`.
    pub fn u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) {
        self.push(Instr {
            op: Op::U3 { theta, phi, lambda },
            q0: q,
            q1: None,
        });
    }

    /// Appends a discrete gate on `q`.
    pub fn gate(&mut self, q: usize, g: Gate) {
        self.push(Instr {
            op: Op::Gate1(g),
            q0: q,
            q1: None,
        });
    }

    /// Appends `H` on `q` (convenience).
    pub fn h(&mut self, q: usize) {
        self.gate(q, Gate::H);
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.push(Instr {
            op: Op::Cx,
            q0: c,
            q1: Some(t),
        });
    }

    /// Appends all instructions of `other` (qubit counts must match).
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits than `self`.
    pub fn extend_circuit(&mut self, other: &Circuit) {
        assert!(other.n_qubits <= self.n_qubits, "qubit count mismatch");
        self.instrs.extend_from_slice(&other.instrs);
    }

    /// Builds a circuit from raw instructions.
    pub fn from_instrs(n_qubits: usize, instrs: Vec<Instr>) -> Self {
        let mut c = Circuit::new(n_qubits);
        for i in instrs {
            c.push(i);
        }
        c
    }

    /// Removes every instruction, keeping the allocation and qubit count.
    pub fn clear(&mut self) {
        self.instrs.clear();
    }

    /// Clears the circuit and sets a new qubit count, keeping the
    /// instruction allocation (the pass pipeline's buffer-reuse hook).
    pub fn reset(&mut self, n_qubits: usize) {
        self.instrs.clear();
        self.n_qubits = n_qubits;
    }

    /// Overwrites `self` with a copy of `other`, reusing `self`'s
    /// instruction allocation (unlike `*self = other.clone()`).
    pub fn copy_from(&mut self, other: &Circuit) {
        self.n_qubits = other.n_qubits;
        self.instrs.clear();
        self.instrs.extend_from_slice(&other.instrs);
    }

    /// In-crate access to the raw instruction vector for passes that
    /// rewrite circuits in place. Callers must preserve the invariants
    /// `push` checks (qubit bounds, distinct CNOT operands).
    pub(crate) fn raw_instrs_mut(&mut self) -> &mut Vec<Instr> {
        &mut self.instrs
    }

    /// The inverse circuit: reversed instruction order with each gate
    /// inverted (rotations negate, `CX` is an involution).
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for i in self.instrs.iter().rev() {
            let op = match i.op {
                Op::Rz(a) => Op::Rz(-a),
                Op::Rx(a) => Op::Rx(-a),
                Op::Ry(a) => Op::Ry(-a),
                // U3(θ,φ,λ)† = Rz(−λ)·Ry(−θ)·Rz(−φ); absorbing the sign of
                // θ through Ry(−θ) = Rz(π)·Ry(θ)·Rz(−π) gives
                // U3(θ, π−λ, −π−φ) up to global phase.
                Op::U3 { theta, phi, lambda } => Op::U3 {
                    theta,
                    phi: qmath::euler::wrap_angle(std::f64::consts::PI - lambda),
                    lambda: qmath::euler::wrap_angle(-std::f64::consts::PI - phi),
                },
                Op::Gate1(g) => Op::Gate1(g.inverse()),
                Op::Cx => Op::Cx,
            };
            out.push(Instr { op, ..*i });
        }
        out
    }

    /// Circuit depth: the longest chain of instructions where consecutive
    /// ones share a qubit (every instruction counts as one layer).
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.n_qubits];
        for i in &self.instrs {
            match i.q1 {
                Some(t) => {
                    let m = d[i.q0].max(d[t]) + 1;
                    d[i.q0] = m;
                    d[t] = m;
                }
                None => d[i.q0] += 1,
            }
        }
        d.into_iter().max().unwrap_or(0)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit({} qubits, {} ops):", self.n_qubits, self.len())?;
        for i in &self.instrs {
            match (i.op, i.q1) {
                (Op::Cx, Some(t)) => writeln!(f, "  cx q{}, q{}", i.q0, t)?,
                (Op::Rz(a), _) => writeln!(f, "  rz({a:.6}) q{}", i.q0)?,
                (Op::Rx(a), _) => writeln!(f, "  rx({a:.6}) q{}", i.q0)?,
                (Op::Ry(a), _) => writeln!(f, "  ry({a:.6}) q{}", i.q0)?,
                (Op::U3 { theta, phi, lambda }, _) => {
                    writeln!(f, "  u3({theta:.6},{phi:.6},{lambda:.6}) q{}", i.q0)?;
                }
                (Op::Gate1(g), _) => writeln!(f, "  {} q{}", g.symbol(), i.q0)?,
                (Op::Cx, None) => unreachable!(),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let mut c = Circuit::new(3);
        c.rz(0, 0.1);
        c.cx(0, 1);
        c.h(2);
        c.u3(1, 0.1, 0.2, 0.3);
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_qubits(), 3);
        assert!(c.instrs()[0].op.is_rotation());
        assert!(!c.instrs()[2].op.is_rotation());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_qubits() {
        let mut c = Circuit::new(1);
        c.rz(1, 0.1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_self_cnot() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn op_matrices() {
        assert!(Op::Rz(0.3).matrix().approx_eq(&Mat2::rz(0.3), 1e-12));
        assert!(Op::Gate1(Gate::H).matrix().approx_eq(&Mat2::h(), 1e-12));
    }

    #[test]
    fn display_contains_ops() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.5);
        c.cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("rz"));
        assert!(s.contains("cx q0, q1"));
    }

    #[test]
    fn inverse_cancels() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.5);
        c.u3(1, 0.3, 0.2, -0.9);
        c.cx(0, 1);
        c.gate(0, Gate::T);
        let mut whole = c.clone();
        whole.extend_circuit(&c.inverse());
        assert_eq!(whole.len(), 2 * c.len());
        // Every instruction's inverse op must invert its matrix (the U3
        // case is the subtle one).
        let inv = c.inverse();
        for (a, b) in c.instrs().iter().zip(inv.instrs().iter().rev()) {
            if a.op == Op::Cx {
                assert_eq!(b.op, Op::Cx);
                continue;
            }
            let prod = b.op.matrix() * a.op.matrix();
            assert!(
                prod.approx_eq_phase(&Mat2::identity(), 1e-10),
                "op {:?} not inverted by {:?}",
                a.op,
                b.op
            );
        }
    }

    #[test]
    fn depth_counts_layers() {
        let mut c = Circuit::new(3);
        c.h(0); // layer 1 on q0
        c.h(1); // layer 1 on q1
        c.cx(0, 1); // layer 2 on q0,q1
        c.h(2); // layer 1 on q2
        assert_eq!(c.depth(), 2);
    }
}
