//! The 16 transpile settings of Figure 6:
//! `{Rz, U3} × {level 0..3} × {± commutation}`.

use crate::basis::{to_rz_basis, to_u3_basis};
use crate::commute::commute_rotations;
use crate::fuse::fuse_single_qubit;
use crate::ir::{Circuit, Op};
use crate::metrics::rotation_count;

/// Target intermediate representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Basis {
    /// `Clifford + Rz` (the `gridsynth` workflow).
    Rz,
    /// `CNOT + U3` (the trasyn workflow).
    U3,
}

/// One transpilation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TranspileSetting {
    /// Target IR.
    pub basis: Basis,
    /// Optimization level 0–3 (mirroring the paper's Qiskit levels:
    /// 0 = direct lowering, 1 = +fusion, 2 = +CNOT-pair cancellation,
    /// 3 = +repeated fusion sweep).
    pub level: u8,
    /// Whether to run the §3.4 commutation pass first.
    pub commutation: bool,
}

impl TranspileSetting {
    /// All 16 settings, Rz first, then U3, level-major.
    pub fn all() -> Vec<TranspileSetting> {
        let mut out = Vec::with_capacity(16);
        for &basis in &[Basis::Rz, Basis::U3] {
            for level in 0..=3u8 {
                for &commutation in &[false, true] {
                    out.push(TranspileSetting {
                        basis,
                        level,
                        commutation,
                    });
                }
            }
        }
        out
    }
}

/// Transpiles `c` under a setting, returning the lowered circuit.
pub fn transpile(c: &Circuit, setting: TranspileSetting) -> Circuit {
    let mut work = c.clone();
    if setting.commutation {
        work = commute_rotations(&work);
    }
    if setting.level >= 1 {
        work = fuse_single_qubit(&work);
    }
    if setting.level >= 2 {
        work = cancel_cx_pairs(&work);
        work = fuse_single_qubit(&work);
    }
    if setting.level >= 3 {
        if setting.commutation {
            work = commute_rotations(&work);
        }
        work = fuse_single_qubit(&work);
    }
    match setting.basis {
        Basis::Rz => to_rz_basis(&work),
        Basis::U3 => to_u3_basis(&work),
    }
}

/// Picks the setting minimizing the nontrivial-rotation count for a given
/// basis (the paper picks the best of the four levels per IR; Figure 6
/// counts which setting wins). Returns `(setting, rotations, circuit)`.
pub fn best_for_basis(c: &Circuit, basis: Basis) -> (TranspileSetting, usize, Circuit) {
    TranspileSetting::all()
        .into_iter()
        .filter(|s| s.basis == basis)
        .map(|s| {
            let t = transpile(c, s);
            let r = rotation_count(&t);
            (s, r, t)
        })
        .min_by_key(|&(_, r, _)| r)
        .expect("at least one setting per basis")
}

/// Cancels immediately-adjacent identical CNOT pairs (level ≥ 2).
fn cancel_cx_pairs(c: &Circuit) -> Circuit {
    let mut out: Vec<crate::ir::Instr> = Vec::with_capacity(c.len());
    for i in c.instrs() {
        if i.op == Op::Cx {
            if let Some(last) = out.last() {
                if last.op == Op::Cx && last.q0 == i.q0 && last.q1 == i.q1 {
                    out.pop();
                    continue;
                }
            }
        }
        out.push(*i);
    }
    Circuit::from_instrs(c.n_qubits(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        // Rz and Rx separated by a commuting CNOT — the motivating shape.
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.rx(1, 0.7);
        c.cx(0, 1);
        c.rz(0, 0.4);
        c.rx(1, 0.2);
        c.cx(0, 1);
        c.cx(0, 1); // cancellable pair
        c
    }

    #[test]
    fn sixteen_settings() {
        assert_eq!(TranspileSetting::all().len(), 16);
    }

    #[test]
    fn u3_with_commutation_minimizes_rotations() {
        let c = sample_circuit();
        let plain = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 1,
                commutation: false,
            },
        );
        let commuted = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 3,
                commutation: true,
            },
        );
        assert!(
            rotation_count(&commuted) < rotation_count(&plain),
            "commutation must enable merges: {} vs {}",
            rotation_count(&commuted),
            rotation_count(&plain)
        );
    }

    #[test]
    fn rz_basis_never_beats_u3_on_mixed_axes() {
        let c = sample_circuit();
        let (_, rz_rot, _) = best_for_basis(&c, Basis::Rz);
        let (_, u3_rot, _) = best_for_basis(&c, Basis::U3);
        assert!(u3_rot <= rz_rot, "U3 {u3_rot} vs Rz {rz_rot}");
    }

    #[test]
    fn level_two_cancels_cx_pairs() {
        let c = sample_circuit();
        let t = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 2,
                commutation: false,
            },
        );
        // Of the three CNOTs, the adjacent identical pair cancels.
        assert_eq!(crate::metrics::cx_count(&t), 1, "{t}");
    }

    #[test]
    fn level_zero_is_direct_lowering() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3);
        c.rx(0, 0.5);
        let t = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 0,
                commutation: false,
            },
        );
        // No fusion at level 0: both rotations survive.
        assert_eq!(rotation_count(&t), 2);
    }
}
