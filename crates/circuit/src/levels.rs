//! The 16 transpile settings of Figure 6:
//! `{Rz, U3} × {level 0..3} × {± commutation}`.
//!
//! Since the pass-pipeline refactor this module is a thin veneer over
//! [`crate::pass`]: a [`TranspileSetting`] converts to a
//! [`PipelineSpec`] ([`TranspileSetting::spec`]) and [`transpile`] just
//! runs that pipeline, so the figure-6 search and the serving path go
//! through the same instrumented machinery.

use crate::ir::Circuit;
use crate::metrics::rotation_count;
use crate::pass::{PassSpec, Pipeline, PipelineSpec};

/// Target intermediate representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Basis {
    /// `Clifford + Rz` (the `gridsynth` workflow).
    Rz,
    /// `CNOT + U3` (the trasyn workflow).
    U3,
}

/// One transpilation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TranspileSetting {
    /// Target IR.
    pub basis: Basis,
    /// Optimization level 0–3 (mirroring the paper's Qiskit levels:
    /// 0 = direct lowering, 1 = +fusion, 2 = +CNOT-pair cancellation,
    /// 3 = +repeated fusion sweep).
    pub level: u8,
    /// Whether to run the §3.4 commutation pass first.
    pub commutation: bool,
}

impl TranspileSetting {
    /// All 16 settings, Rz first, then U3, level-major.
    pub fn all() -> Vec<TranspileSetting> {
        let mut out = Vec::with_capacity(16);
        for &basis in &[Basis::Rz, Basis::U3] {
            for level in 0..=3u8 {
                for &commutation in &[false, true] {
                    out.push(TranspileSetting {
                        basis,
                        level,
                        commutation,
                    });
                }
            }
        }
        out
    }
}

impl TranspileSetting {
    /// The pass-pipeline spec this setting means: the exact historic
    /// ladder (commute → fuse → cx-cancel → fuse → optional commute →
    /// fuse → basis), truncated by level. `transpile` runs this spec, so
    /// the two forms can never drift apart.
    pub fn spec(&self) -> PipelineSpec {
        let mut passes = Vec::new();
        if self.commutation {
            passes.push(PassSpec::Commute);
        }
        if self.level >= 1 {
            passes.push(PassSpec::Fuse);
        }
        if self.level >= 2 {
            passes.push(PassSpec::CxCancel);
            passes.push(PassSpec::Fuse);
        }
        if self.level >= 3 {
            if self.commutation {
                passes.push(PassSpec::Commute);
            }
            passes.push(PassSpec::Fuse);
        }
        passes.push(PassSpec::Basis(self.basis));
        PipelineSpec::Custom(passes)
    }
}

impl From<TranspileSetting> for PipelineSpec {
    fn from(s: TranspileSetting) -> PipelineSpec {
        s.spec()
    }
}

/// Transpiles `c` under a setting, returning the lowered circuit. Thin
/// wrapper over [`crate::pass::Pipeline`]: one clone up front, then every
/// stage runs in place.
pub fn transpile(c: &Circuit, setting: TranspileSetting) -> Circuit {
    let mut work = c.clone();
    Pipeline::from_spec(&setting.spec(), setting.basis)
        .expect("transpile settings use only built-in passes")
        .run(&mut work);
    work
}

/// Picks the setting minimizing the nontrivial-rotation count for a given
/// basis (the paper picks the best of the four levels per IR; Figure 6
/// counts which setting wins). Returns `(setting, rotations, circuit)`.
///
/// Settings are evaluated *streaming*: one work buffer is reused across
/// all eight candidates and only the current best circuit is retained, so
/// peak memory is two circuits, not eight. Ties keep the earliest setting
/// in [`TranspileSetting::all`] order (the historic behavior).
pub fn best_for_basis(c: &Circuit, basis: Basis) -> (TranspileSetting, usize, Circuit) {
    let mut work = Circuit::new(c.n_qubits());
    let mut best: Option<(TranspileSetting, usize, Circuit)> = None;
    for s in TranspileSetting::all().into_iter().filter(|s| s.basis == basis) {
        work.copy_from(c);
        Pipeline::from_spec(&s.spec(), s.basis)
            .expect("transpile settings use only built-in passes")
            .run(&mut work);
        let r = rotation_count(&work);
        if best.as_ref().is_none_or(|&(_, br, _)| r < br) {
            // Swap the candidate in and let `work` keep (and later
            // overwrite) the previous best's allocation.
            match best.as_mut() {
                Some(b) => {
                    b.0 = s;
                    b.1 = r;
                    std::mem::swap(&mut b.2, &mut work);
                }
                None => best = Some((s, r, std::mem::take(&mut work))),
            }
        }
    }
    best.expect("at least one setting per basis")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        // Rz and Rx separated by a commuting CNOT — the motivating shape.
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.rx(1, 0.7);
        c.cx(0, 1);
        c.rz(0, 0.4);
        c.rx(1, 0.2);
        c.cx(0, 1);
        c.cx(0, 1); // cancellable pair
        c
    }

    #[test]
    fn sixteen_settings() {
        assert_eq!(TranspileSetting::all().len(), 16);
    }

    #[test]
    fn u3_with_commutation_minimizes_rotations() {
        let c = sample_circuit();
        let plain = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 1,
                commutation: false,
            },
        );
        let commuted = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 3,
                commutation: true,
            },
        );
        assert!(
            rotation_count(&commuted) < rotation_count(&plain),
            "commutation must enable merges: {} vs {}",
            rotation_count(&commuted),
            rotation_count(&plain)
        );
    }

    #[test]
    fn rz_basis_never_beats_u3_on_mixed_axes() {
        let c = sample_circuit();
        let (_, rz_rot, _) = best_for_basis(&c, Basis::Rz);
        let (_, u3_rot, _) = best_for_basis(&c, Basis::U3);
        assert!(u3_rot <= rz_rot, "U3 {u3_rot} vs Rz {rz_rot}");
    }

    #[test]
    fn level_two_cancels_cx_pairs() {
        let c = sample_circuit();
        let t = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 2,
                commutation: false,
            },
        );
        // Of the three CNOTs, the adjacent identical pair cancels.
        assert_eq!(crate::metrics::cx_count(&t), 1, "{t}");
    }

    #[test]
    fn level_zero_is_direct_lowering() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3);
        c.rx(0, 0.5);
        let t = transpile(
            &c,
            TranspileSetting {
                basis: Basis::U3,
                level: 0,
                commutation: false,
            },
        );
        // No fusion at level 0: both rotations survive.
        assert_eq!(rotation_count(&t), 2);
    }
}
