//! Multi-qubit circuit IR and the paper's transpilation passes.
//!
//! The paper's compilation study (§2.2, §3.4, Figures 3 and 6) compares
//! two intermediate representations for fault-tolerant lowering:
//!
//! * **Clifford+Rz** — every single-qubit unitary becomes three `Rz`
//!   rotations interleaved with `H` (Eq. 1), each synthesized separately;
//! * **CNOT+U3** — adjacent single-qubit gates merge into one `U3`,
//!   synthesized directly (by trasyn).
//!
//! This crate provides the circuit IR ([`Circuit`], [`Op`]), the merge
//! passes ([`fuse`]), the `Rz`/`Rx`-through-CNOT commutation pass
//! ([`commute`]), the two basis lowerings ([`basis`]), the instrumented
//! pass pipeline that sequences them ([`pass`]), the 16 transpile
//! settings of Figure 6 as pipeline wrappers ([`levels`]), resource
//! metrics ([`metrics`]), and circuit-wide application of a single-qubit
//! synthesizer ([`synthesize`]).
//!
//! ```
//! use circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.rz(0, 0.3);
//! c.rx(0, 0.5); // adjacent: fusable into one U3
//! c.cx(0, 1);
//! let fused = circuit::fuse::fuse_single_qubit(&c);
//! assert_eq!(circuit::metrics::rotation_count(&fused), 1);
//! ```

pub mod basis;
pub mod commute;
pub mod fuse;
pub mod ir;
pub mod levels;
pub mod metrics;
pub mod pass;
pub mod qasm;
pub mod synthesize;
pub mod trivial;

pub use ir::{Circuit, Instr, Op};
pub use levels::{transpile, Basis, TranspileSetting};
pub use pass::{Pass, PassSpec, PassStats, Pipeline, PipelineSpec, Preset};
