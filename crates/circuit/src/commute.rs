//! The gate-commutation pass of §3.4.
//!
//! `Rz` commutes with the *control* of a CNOT and `Rx` with its *target*.
//! Pushing rotations through CNOTs brings previously-separated rotations
//! next to each other so the fusion pass can merge them — the mechanism
//! behind the consistent ~40% rotation reduction in QAOA circuits.

use crate::ir::{Circuit, Instr, Op};

/// Pushes `Rz` rotations rightward through CNOT controls and `Rx`
/// rotations rightward through CNOT targets, as long as doing so moves
/// them closer to another single-qubit gate on the same qubit. Applied to
/// a fixpoint (bounded number of sweeps).
pub fn commute_rotations(c: &Circuit) -> Circuit {
    let mut out = c.clone();
    commute_rotations_in_place(&mut out);
    out
}

/// In-place form of [`commute_rotations`]: the pipeline's `commute` pass.
/// Swaps never change the instruction multiset, so no reallocation (or
/// revalidation) happens.
pub fn commute_rotations_in_place(c: &mut Circuit) {
    let instrs = c.raw_instrs_mut();
    let mut changed = true;
    let mut sweeps = 0usize;
    while changed && sweeps < 32 {
        changed = false;
        sweeps += 1;
        let mut i = 0usize;
        while i + 1 < instrs.len() {
            let a = instrs[i];
            let b = instrs[i + 1];
            if can_swap(&a, &b) && beneficial(instrs, i) {
                instrs.swap(i, i + 1);
                changed = true;
            }
            i += 1;
        }
    }
}

/// `true` when instruction `a` may hop over the *next* instruction `b`
/// without changing the circuit's operator.
fn can_swap(a: &Instr, b: &Instr) -> bool {
    match (a.op, b.op) {
        // Disjoint qubits always commute.
        _ if disjoint(a, b) => true,
        // Rz/diagonal past a CNOT control.
        (Op::Rz(_), Op::Cx) => b.q0 == a.q0 && b.q1 != Some(a.q0),
        // Rx past a CNOT target.
        (Op::Rx(_), Op::Cx) => b.q1 == Some(a.q0) && b.q0 != a.q0,
        _ => false,
    }
}

fn disjoint(a: &Instr, b: &Instr) -> bool {
    let aq = [Some(a.q0), a.q1];
    let bq = [Some(b.q0), b.q1];
    for x in aq.into_iter().flatten() {
        for y in bq.into_iter().flatten() {
            if x == y {
                return false;
            }
        }
    }
    true
}

/// Only hop a rotation over a CNOT when somewhere to the right there is
/// another **rotation** on the same qubit to merge with (prevents
/// aimless churn and guarantees sweep termination together with the
/// sweep bound).
///
/// Discrete single-qubit gates are looked *through*, not counted: fusion
/// merges a rotation with adjacent Cliffords into one `U3` either way,
/// which leaves the nontrivial-rotation count unchanged — hopping toward
/// a lone Clifford gains nothing, and chasing those hops made re-running
/// a preset on its own output keep rewriting it (basis lowering emits
/// `Rz` next to `H` barriers; the old predicate then shuffled them
/// across CNOTs on every recompile).
fn beneficial(instrs: &[Instr], i: usize) -> bool {
    let a = instrs[i];
    if !a.op.is_rotation() {
        // Plain disjoint swaps are never needed for merging; skip to keep
        // the pass minimal and deterministic.
        return false;
    }
    for b in instrs.iter().skip(i + 2) {
        match b.op {
            Op::Cx => {
                let involved = b.q0 == a.q0 || b.q1 == Some(a.q0);
                if involved {
                    // The rotation could keep commuting only if compatible;
                    // conservatively stop the lookahead at an incompatible
                    // CNOT.
                    let compatible = matches!(
                        (a.op, ()),
                        (Op::Rz(_), ()) if b.q0 == a.q0
                    ) || matches!(
                        (a.op, ()),
                        (Op::Rx(_), ()) if b.q1 == Some(a.q0)
                    );
                    if !compatible {
                        return false;
                    }
                }
            }
            // A discrete 1q gate merges transparently under fusion, so it
            // falls through to the catch-all and the scan continues to a
            // real merge partner behind it.
            _ if b.q0 == a.q0 && b.q1.is_none() && b.op.is_rotation() => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse_single_qubit;
    use crate::metrics::rotation_count;

    #[test]
    fn rz_commutes_through_control() {
        // rz(q0); cx(q0,q1); rz(q0)  →  after commuting + fusing: 1 rotation.
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.rz(0, 0.4);
        let out = fuse_single_qubit(&commute_rotations(&c));
        assert_eq!(rotation_count(&out), 1, "{out}");
    }

    #[test]
    fn rx_commutes_through_target() {
        let mut c = Circuit::new(2);
        c.rx(1, 0.3);
        c.cx(0, 1);
        c.rx(1, 0.4);
        let out = fuse_single_qubit(&commute_rotations(&c));
        assert_eq!(rotation_count(&out), 1, "{out}");
    }

    #[test]
    fn rz_does_not_cross_target() {
        let mut c = Circuit::new(2);
        c.rz(1, 0.3);
        c.cx(0, 1);
        c.rz(1, 0.4);
        let out = fuse_single_qubit(&commute_rotations(&c));
        assert_eq!(rotation_count(&out), 2, "Rz must not cross a CNOT target");
    }

    #[test]
    fn operator_preserved_on_two_qubits() {
        use qmath::CMatrix;
        // Verify semantics with an explicit 4x4 matrix product.
        let mut c = Circuit::new(2);
        c.rz(0, 0.7);
        c.cx(0, 1);
        c.rz(0, -0.4);
        c.rx(1, 0.9);
        let out = commute_rotations(&c);
        let m1 = circuit_unitary_2q(&c);
        let m2 = circuit_unitary_2q(&out);
        assert!(m1.approx_eq(&m2, 1e-9), "commutation changed the operator");

        fn circuit_unitary_2q(c: &Circuit) -> CMatrix {
            let mut u = CMatrix::identity(4);
            for i in c.instrs() {
                let g = match i.op {
                    Op::Cx => {
                        let mut m = CMatrix::zeros(4, 4);
                        // control = q0, target = q1 (q0 is the HIGH bit
                        // when q0 < q1 in big-endian ordering below).
                        let (ctrl, tgt) = (i.q0, i.q1.unwrap());
                        for b0 in 0..2usize {
                            for b1 in 0..2usize {
                                let bits = [b0, b1];
                                let cbit = bits[ctrl];
                                let mut obits = bits;
                                if cbit == 1 {
                                    obits[tgt] ^= 1;
                                }
                                let from = b0 * 2 + b1;
                                let to = obits[0] * 2 + obits[1];
                                m[(to, from)] = qmath::Complex64::ONE;
                            }
                        }
                        m
                    }
                    op => {
                        let g1 = CMatrix::from_mat2(&op.matrix());
                        let id = CMatrix::identity(2);
                        if i.q0 == 0 {
                            g1.kron(&id)
                        } else {
                            id.kron(&g1)
                        }
                    }
                };
                u = &g * &u;
            }
            u
        }
    }

    #[test]
    fn no_merge_opportunity_means_no_motion() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        let out = commute_rotations(&c);
        assert_eq!(out.instrs(), c.instrs());
    }

    #[test]
    fn lone_clifford_is_not_a_merge_target() {
        // Hopping toward a lone H cannot reduce the nontrivial-rotation
        // count (the merged U3 is still one nontrivial rotation), and
        // chasing it made recompiles of basis-lowered output churn. The
        // rotation must stay put.
        use gates::Gate;
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.gate(0, Gate::H);
        let out = commute_rotations(&c);
        assert_eq!(out.instrs(), c.instrs(), "{out}");
    }

    #[test]
    fn discrete_gates_are_looked_through_to_a_rotation_partner() {
        // rz; cx; T; rz — the T merges transparently under fusion, so
        // the far rotation is still a real partner: the hop must happen
        // and fusion must collapse the wire to one rotation run.
        use gates::Gate;
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.gate(0, Gate::T);
        c.rz(0, 0.4);
        let out = fuse_single_qubit(&commute_rotations(&c));
        assert_eq!(rotation_count(&out), 1, "{out}");
    }
}
