//! Recognizing "trivial" rotations.
//!
//! Paper §2.2 footnote 3: a rotation is *nontrivial* if it needs more than
//! one T gate — `Rz` angles at integer multiples of π/4 (and generally any
//! unitary within the 96-element set `{Clifford, Clifford·T·Clifford}`)
//! synthesize exactly with at most one T, so they are excluded from
//! rotation counts and synthesized by table lookup.

use gates::clifford::clifford_elements;
use gates::{ExactMat2, Gate, GateSeq};
use qmath::Mat2;
use std::sync::OnceLock;

/// An exactly-representable gate with at most one T.
#[derive(Clone, Debug)]
pub struct TrivialEntry {
    /// Numeric matrix.
    pub matrix: Mat2,
    /// Minimal sequence (T count ≤ 1).
    pub seq: GateSeq,
}

/// The 96 matrices with T count ≤ 1 (24 Cliffords + 72 with one T),
/// each with its minimal sequence.
pub fn trivial_set() -> &'static [TrivialEntry] {
    static CACHE: OnceLock<Vec<TrivialEntry>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cliffords = clifford_elements();
        let mut seen: Vec<ExactMat2> = Vec::new();
        let mut out: Vec<TrivialEntry> = Vec::new();
        let mut push = |seq: GateSeq| {
            let exact = ExactMat2::from_seq(&seq);
            let key = exact.phase_canonical();
            if !seen.contains(&key) {
                seen.push(key);
                out.push(TrivialEntry {
                    matrix: exact.to_mat2(),
                    seq,
                });
            }
        };
        for c in cliffords {
            push(c.seq.clone());
        }
        for c1 in cliffords {
            for c2 in cliffords {
                let mut seq = c1.seq.clone();
                seq.push(Gate::T);
                seq.extend_seq(&c2.seq);
                push(seq.simplified());
            }
        }
        out
    })
}

/// If `m` equals (up to global phase) a unitary with T count ≤ 1, returns
/// its minimal gate sequence.
pub fn as_trivial(m: &Mat2, tol: f64) -> Option<&'static GateSeq> {
    trivial_set()
        .iter()
        .find(|e| m.approx_eq_phase(&e.matrix, tol))
        .map(|e| &e.seq)
}

/// `true` when the rotation needs more than one T gate — the paper's
/// "nontrivial rotation" predicate used in all rotation counts.
pub fn is_nontrivial(m: &Mat2) -> bool {
    as_trivial(m, 1e-9).is_none()
}

/// `true` when `angle` is (numerically) an integer multiple of π/4.
pub fn is_pi4_multiple(angle: f64) -> bool {
    let steps = angle / std::f64::consts::FRAC_PI_4;
    (steps - steps.round()).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn set_has_96_elements() {
        // 24·(3·2¹ − 2) = 96 unique matrices with T ≤ 1.
        assert_eq!(trivial_set().len(), 96);
    }

    #[test]
    fn rz_pi4_multiples_are_trivial() {
        for m in -8..=8 {
            let rz = Mat2::rz(m as f64 * FRAC_PI_4);
            assert!(!is_nontrivial(&rz), "Rz({m}π/4) should be trivial");
        }
    }

    #[test]
    fn generic_rotation_is_nontrivial() {
        assert!(is_nontrivial(&Mat2::rz(0.3)));
        assert!(is_nontrivial(&Mat2::u3(0.5, 0.2, 0.9)));
    }

    #[test]
    fn rx_pi2_is_trivial() {
        // Rx(π/2) = H·S·H·(phase): Clifford.
        assert!(!is_nontrivial(&Mat2::rx(FRAC_PI_2)));
    }

    #[test]
    fn sequences_reproduce_matrices() {
        for e in trivial_set().iter().take(30) {
            assert!(e.seq.matrix().approx_eq(&e.matrix, 1e-9));
            assert!(e.seq.t_count() <= 1);
        }
    }

    #[test]
    fn pi4_multiple_predicate() {
        assert!(is_pi4_multiple(FRAC_PI_4));
        assert!(is_pi4_multiple(0.0));
        assert!(is_pi4_multiple(-3.0 * FRAC_PI_4));
        assert!(!is_pi4_multiple(0.3));
    }
}
