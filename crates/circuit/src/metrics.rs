//! Resource metrics for circuits (paper §4 "Metrics").

use crate::ir::{Circuit, Op};
use crate::trivial::is_nontrivial;

/// Number of *nontrivial* rotations — parametrized single-qubit ops whose
/// unitary needs more than one T gate (paper footnote 3).
pub fn rotation_count(c: &Circuit) -> usize {
    c.instrs()
        .iter()
        .filter(|i| i.op.is_rotation() && is_nontrivial(&i.op.matrix()))
        .count()
}

/// Number of T/T† gates among the discrete ops.
pub fn t_count(c: &Circuit) -> usize {
    c.instrs()
        .iter()
        .filter(|i| matches!(i.op, Op::Gate1(g) if g.is_t_like()))
        .count()
}

/// Number of non-Pauli Clifford gates (`H`, `S`, `S†`) among the discrete
/// ops. Pauli gates are free under Pauli-frame tracking and excluded,
/// following the paper.
pub fn clifford_count(c: &Circuit) -> usize {
    c.instrs()
        .iter()
        .filter(|i| matches!(i.op, Op::Gate1(g) if g.is_clifford() && !g.is_pauli()))
        .count()
}

/// Number of CNOTs.
pub fn cx_count(c: &Circuit) -> usize {
    c.instrs().iter().filter(|i| i.op == Op::Cx).count()
}

/// T depth: the T count along the critical path. Computed with per-qubit
/// depth counters; a CNOT synchronizes its two qubits.
pub fn t_depth(c: &Circuit) -> usize {
    let mut depth = vec![0usize; c.n_qubits()];
    for i in c.instrs() {
        match i.op {
            Op::Cx => {
                let t = i.q1.expect("cx target");
                let d = depth[i.q0].max(depth[t]);
                depth[i.q0] = d;
                depth[t] = d;
            }
            Op::Gate1(g) if g.is_t_like() => depth[i.q0] += 1,
            _ => {}
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

/// Total discrete gate count (excluding rotations awaiting synthesis).
pub fn gate_count(c: &Circuit) -> usize {
    c.instrs()
        .iter()
        .filter(|i| matches!(i.op, Op::Gate1(_) | Op::Cx))
        .count()
}

/// Counts of every resource class at once, convenient for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceCounts {
    /// Nontrivial rotations (pre-synthesis).
    pub rotations: usize,
    /// T/T† gates.
    pub t: usize,
    /// T depth along the critical path.
    pub t_depth: usize,
    /// Non-Pauli Cliffords.
    pub clifford: usize,
    /// CNOTs.
    pub cx: usize,
}

/// Gathers [`ResourceCounts`] for a circuit.
pub fn count_resources(c: &Circuit) -> ResourceCounts {
    ResourceCounts {
        rotations: rotation_count(c),
        t: t_count(c),
        t_depth: t_depth(c),
        clifford: clifford_count(c),
        cx: cx_count(c),
    }
}

/// Per-qubit discrete-gate sequence lengths (useful for T-depth sanity
/// checks in tests).
pub fn per_qubit_t(c: &Circuit) -> Vec<usize> {
    let mut v = vec![0usize; c.n_qubits()];
    for i in c.instrs() {
        if let Op::Gate1(g) = i.op {
            if g.is_t_like() {
                v[i.q0] += 1;
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::Gate;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn rotation_count_skips_trivial() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3); // nontrivial
        c.rz(0, FRAC_PI_2); // trivial (S)
        c.rx(1, 0.9); // nontrivial
        assert_eq!(rotation_count(&c), 2);
    }

    #[test]
    fn t_depth_parallel_vs_serial() {
        // Two T gates on different qubits: depth 1. On the same: depth 2.
        let mut par = Circuit::new(2);
        par.gate(0, Gate::T);
        par.gate(1, Gate::T);
        assert_eq!(t_depth(&par), 1);
        assert_eq!(t_count(&par), 2);

        let mut ser = Circuit::new(2);
        ser.gate(0, Gate::T);
        ser.gate(0, Gate::T);
        assert_eq!(t_depth(&ser), 2);
    }

    #[test]
    fn cnot_synchronizes_depth() {
        let mut c = Circuit::new(2);
        c.gate(0, Gate::T); // depth q0 = 1
        c.cx(0, 1); // sync: both 1
        c.gate(1, Gate::T); // depth q1 = 2
        assert_eq!(t_depth(&c), 2);
    }

    #[test]
    fn clifford_count_excludes_paulis() {
        let mut c = Circuit::new(1);
        c.gate(0, Gate::H);
        c.gate(0, Gate::S);
        c.gate(0, Gate::X);
        c.gate(0, Gate::Z);
        c.gate(0, Gate::T);
        assert_eq!(clifford_count(&c), 2);
        assert_eq!(t_count(&c), 1);
    }

    #[test]
    fn resource_bundle() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3);
        c.cx(0, 1);
        c.gate(1, Gate::T);
        let r = count_resources(&c);
        assert_eq!(r.rotations, 1);
        assert_eq!(r.cx, 1);
        assert_eq!(r.t, 1);
        assert_eq!(r.t_depth, 1);
    }
}
