//! Lowering to the two intermediate representations.
//!
//! * [`to_u3_basis`]: `CNOT + U3` — rotations stay as single `U3` ops
//!   (trivial ones become discrete gate runs);
//! * [`to_rz_basis`]: `Clifford + Rz` — every single-qubit unitary becomes
//!   `Rz·H·Rz·H·Rz` (Eq. 1), with trivial `Rz` factors emitted as
//!   discrete gates.

use crate::ir::{Circuit, Instr, Op};
use crate::trivial::{as_trivial, is_pi4_multiple};
use qmath::euler::{decompose_u3, u3_to_three_rz};
use qmath::Mat2;

/// Lowers every rotation to a `U3` op; rotations equal to a ≤1-T unitary
/// become their minimal discrete gate run instead.
pub fn to_u3_basis(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.n_qubits());
    lower_u3_into(c, &mut out);
    out
}

/// Core of [`to_u3_basis`], appending into a caller-owned circuit so the
/// pass pipeline can reuse its allocation. `out` must already have `c`'s
/// qubit count and be empty.
pub(crate) fn lower_u3_into(c: &Circuit, out: &mut Circuit) {
    for i in c.instrs() {
        match i.op {
            Op::Cx | Op::Gate1(_) => out.push(*i),
            op => {
                let m = op.matrix();
                if let Some(seq) = as_trivial(&m, 1e-9) {
                    push_seq(out, i.q0, seq);
                } else {
                    let a = decompose_u3(&m);
                    out.push(Instr {
                        op: Op::U3 {
                            theta: a.theta,
                            phi: a.phi,
                            lambda: a.lambda,
                        },
                        q0: i.q0,
                        q1: None,
                    });
                }
            }
        }
    }
}

/// Lowers every rotation to the `Clifford+Rz` IR: nontrivial single-qubit
/// unitaries become `Rz(β₁)·H·Rz(β₂)·H·Rz(β₃)` (in circuit time: β₃
/// first). π/4-multiple `Rz` factors are emitted as discrete gates.
pub fn to_rz_basis(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.n_qubits());
    lower_rz_into(c, &mut out);
    out
}

/// Off-diagonal tolerance below which a unitary is lowered as a bare
/// `Rz` instead of the generic three-`Rz` split. The emitted rotation is
/// within ~2×tol of the true operator — inside the per-instruction float
/// slack every verification bound budgets for.
const DIAGONAL_TOL: f64 = 1e-9;

/// If `m` is diagonal up to global phase (within [`DIAGONAL_TOL`]), the
/// `Rz` angle it implements.
fn diagonal_rz_angle(m: &Mat2) -> Option<f64> {
    if m.e[1].abs() > DIAGONAL_TOL || m.e[2].abs() > DIAGONAL_TOL {
        return None;
    }
    // m = e^{iα}·diag(e^{−iθ/2}, e^{iθ/2}).
    Some((m.e[3] / m.e[0]).arg())
}

/// Core of [`to_rz_basis`]; same contract as [`lower_u3_into`].
pub(crate) fn lower_rz_into(c: &Circuit, out: &mut Circuit) {
    for i in c.instrs() {
        match i.op {
            Op::Cx | Op::Gate1(_) => out.push(*i),
            Op::Rz(a) => push_rz(out, i.q0, a),
            op => {
                let m = op.matrix();
                if let Some(seq) = as_trivial(&m, 1e-9) {
                    push_seq(out, i.q0, seq);
                    continue;
                }
                // A diagonal that arrived as `U3 {theta ≈ 0}` (gate
                // fusion emits those) must lower to ONE `Rz`: the generic
                // split below would emit `Rz·H·Rz(0)·H·Rz` — a gauge
                // `±π/2` smeared across an `H·H` pair that phase folding
                // cannot see through, which made `zx`-preset recompiles
                // oscillate forever instead of reaching a fixed point.
                if let Some(theta) = diagonal_rz_angle(&m) {
                    push_rz(out, i.q0, theta);
                    continue;
                }
                let ang = decompose_u3(&m);
                let (b1, b2, b3) = u3_to_three_rz(ang.theta, ang.phi, ang.lambda);
                // Matrix product Rz(b1)·H·Rz(b2)·H·Rz(b3) reads right to
                // left in circuit time: b3 acts first.
                push_rz(out, i.q0, b3);
                out.h(i.q0);
                push_rz(out, i.q0, b2);
                out.h(i.q0);
                push_rz(out, i.q0, b1);
            }
        }
    }
}

/// Emits `Rz(angle)` on `q`, as discrete gates when the angle is a π/4
/// multiple (paper footnote 3), skipping zero entirely.
fn push_rz(out: &mut Circuit, q: usize, angle: f64) {
    if is_pi4_multiple(angle) {
        let m = Mat2::rz(angle);
        if let Some(seq) = as_trivial(&m, 1e-9) {
            push_seq(out, q, seq);
            return;
        }
    }
    out.rz(q, angle);
}

/// Appends a [`gates::GateSeq`] (matrix convention: leftmost factor last
/// in circuit time) to the circuit on qubit `q`.
pub fn push_seq(out: &mut Circuit, q: usize, seq: &gates::GateSeq) {
    // GateSeq [g1, g2, ...] means operator g1·g2·…; in circuit time the
    // rightmost factor acts first, so emit in reverse.
    for g in seq.gates().iter().rev() {
        out.gate(q, *g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rotation_count;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn u3_basis_keeps_one_rotation_per_unitary() {
        let mut c = Circuit::new(1);
        c.u3(0, 0.4, 0.8, -0.3);
        let u = to_u3_basis(&c);
        assert_eq!(rotation_count(&u), 1);
    }

    #[test]
    fn rz_basis_triples_rotations_generically() {
        let mut c = Circuit::new(1);
        c.u3(0, 0.4, 0.8, -0.3);
        let r = to_rz_basis(&c);
        assert_eq!(rotation_count(&r), 3, "{r}");
    }

    #[test]
    fn rz_basis_preserves_operator() {
        let mut c = Circuit::new(1);
        c.u3(0, 0.4, 0.8, -0.3);
        let r = to_rz_basis(&c);
        // Reconstruct the single-qubit operator (reverse circuit order).
        let mut m = Mat2::identity();
        for i in r.instrs() {
            m = i.op.matrix() * m;
        }
        assert!(m.approx_eq_phase(&Mat2::u3(0.4, 0.8, -0.3), 1e-9));
    }

    #[test]
    fn trivial_rotations_become_discrete() {
        let mut c = Circuit::new(1);
        c.rz(0, FRAC_PI_2); // = S up to phase
        let u = to_u3_basis(&c);
        assert_eq!(rotation_count(&u), 0, "{u}");
        let r = to_rz_basis(&c);
        assert_eq!(rotation_count(&r), 0, "{r}");
    }

    #[test]
    fn axis_rotation_stays_single_in_rz_basis() {
        // A bare Rz stays one rotation (not three).
        let mut c = Circuit::new(1);
        c.rz(0, 0.777);
        let r = to_rz_basis(&c);
        assert_eq!(rotation_count(&r), 1);
    }

    #[test]
    fn rx_becomes_three_rz_only_via_euler_with_trivial_outer() {
        // Rx(θ) = H·Rz(θ)·H: β₁, β₃ are ±π/2 → trivial, leaving ONE
        // nontrivial rotation. The Rz IR is only worse for *mixed* axes.
        let mut c = Circuit::new(1);
        c.rx(0, 0.777);
        let r = to_rz_basis(&c);
        assert_eq!(rotation_count(&r), 1, "{r}");
    }

    #[test]
    fn fused_diagonal_u3_lowers_to_one_rz() {
        // Gate fusion emits diagonal runs as `U3 {theta ≈ 0}`; lowering
        // one through the generic three-Rz split used to produce
        // `Sdg·H·H·Rz`, whose ±π/2 gauge made zx-preset recompiles
        // oscillate forever. It must become a single bare Rz.
        let mut c = Circuit::new(1);
        c.u3(0, 0.0, -0.4746, 0.0);
        let r = to_rz_basis(&c);
        assert_eq!(r.len(), 1, "{r}");
        assert!(matches!(r.instrs()[0].op, Op::Rz(_)), "{r}");
        // Semantics: U3(0, φ, 0) is Rz(φ) up to global phase.
        assert!(r.instrs()[0]
            .op
            .matrix()
            .approx_eq_phase(&Mat2::rz(-0.4746), 1e-9));
        // A diagonal that is ALSO trivial still snaps to discrete gates.
        let mut t = Circuit::new(1);
        t.u3(0, 0.0, std::f64::consts::FRAC_PI_2, 0.0);
        assert_eq!(rotation_count(&to_rz_basis(&t)), 0);
    }

    #[test]
    fn cx_passes_through() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.u3(0, 0.4, 0.8, -0.3);
        assert_eq!(to_rz_basis(&c).instrs()[0].op, Op::Cx);
        assert_eq!(to_u3_basis(&c).instrs()[0].op, Op::Cx);
    }
}
