//! `U3` synthesis through three `Rz` decompositions — the workflow the
//! paper's trasyn replaces.
//!
//! `U3(θ, φ, λ) = Rz(φ + π/2) · H · Rz(θ) · H · Rz(λ − π/2)` up to global
//! phase (paper Eq. 1). Each `Rz` is synthesized independently at `ε/3` so
//! the accumulated error stays within the budget; this 1/3 scaling is
//! exactly why the `Rz` workflow pays a ~3× T-count premium over direct
//! unitary synthesis.

use crate::rz::{synthesize_rz_with, RzOptions, RzSynthesis};
use gates::{Gate, GateSeq};
use qmath::distance::unitary_distance;
use qmath::euler::{decompose_u3, u3_to_three_rz};
use qmath::Mat2;

/// A synthesized `U3` approximation via three `Rz` syntheses.
#[derive(Clone, Debug)]
pub struct U3Synthesis {
    /// The combined Clifford+T sequence.
    pub seq: GateSeq,
    /// Achieved unitary distance to the target (Eq. 2).
    pub error: f64,
    /// The three underlying `Rz` syntheses (β₁, β₂=θ, β₃ order).
    pub parts: [RzSynthesis; 3],
}

impl U3Synthesis {
    /// Total T count.
    pub fn t_count(&self) -> usize {
        self.seq.t_count()
    }

    /// Total non-Pauli Clifford count.
    pub fn clifford_count(&self) -> usize {
        self.seq.clifford_count()
    }
}

/// Synthesizes an arbitrary single-qubit unitary with the `gridsynth`
/// three-`Rz` workflow at overall error budget `eps`.
///
/// Each rotation gets an `eps/3` budget; errors add at most linearly
/// (triangle inequality for the operator norm; Eq. 2 distance is within a
/// small constant of it at these scales).
///
/// ```
/// use qmath::Mat2;
/// let u = Mat2::u3(0.9, 0.4, -1.1);
/// let s = gridsynth::synthesize_u3(&u, 0.05).unwrap();
/// assert!(s.error <= 0.05 + 1e-6);
/// ```
pub fn synthesize_u3(u: &Mat2, eps: f64) -> Option<U3Synthesis> {
    synthesize_u3_with(u, eps, RzOptions::default())
}

/// [`synthesize_u3`] with explicit per-rotation options.
pub fn synthesize_u3_with(u: &Mat2, eps: f64, opts: RzOptions) -> Option<U3Synthesis> {
    let a = decompose_u3(u);
    let (b1, b2, b3) = u3_to_three_rz(a.theta, a.phi, a.lambda);
    let per_rot = eps / 3.0;
    let r1 = synthesize_rz_with(b1, per_rot, opts)?;
    let r2 = synthesize_rz_with(b2, per_rot, opts)?;
    let r3 = synthesize_rz_with(b3, per_rot, opts)?;
    let mut seq = GateSeq::new();
    seq.extend_seq(&r1.seq);
    seq.push(Gate::H);
    seq.extend_seq(&r2.seq);
    seq.push(Gate::H);
    seq.extend_seq(&r3.seq);
    let seq = seq.simplified();
    let error = unitary_distance(u, &seq.matrix());
    Some(U3Synthesis {
        seq,
        error,
        parts: [r1, r2, r3],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::haar::haar_mat2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesizes_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..5 {
            let u = haar_mat2(&mut rng);
            let s = synthesize_u3(&u, 0.1).expect("synthesizable");
            assert!(s.error <= 0.1 + 1e-6, "error {}", s.error);
        }
    }

    #[test]
    fn t_count_is_roughly_three_rz() {
        // The threefold premium: #T(U3) ≈ 3 × #T(single Rz at ε/3).
        let mut rng = StdRng::seed_from_u64(72);
        let u = haar_mat2(&mut rng);
        let s = synthesize_u3(&u, 0.05).unwrap();
        let per_part_max = s.parts.iter().map(|p| p.t_count()).max().unwrap();
        assert!(
            s.t_count() >= 2 * per_part_max.saturating_sub(2),
            "T {} vs max part {}",
            s.t_count(),
            per_part_max
        );
    }

    #[test]
    fn clifford_targets_need_no_t() {
        let s = synthesize_u3(&Mat2::h(), 0.01).unwrap();
        assert!(s.error < 0.01);
        assert_eq!(s.t_count(), 0, "H is Clifford: {}", s.seq);
    }

    #[test]
    fn tight_epsilon_still_converges() {
        let u = Mat2::u3(0.83, -0.21, 1.47);
        let s = synthesize_u3(&u, 1e-3).unwrap();
        assert!(s.error <= 1e-3 + 1e-9);
    }
}
