//! Small-dimension lattice tools: floating-point LLL reduction and
//! Fincke–Pohst enumeration of lattice points in a ball.
//!
//! The 2-D grid problem of `gridsynth` becomes, after weighting, "find all
//! points of a fixed rank-4 lattice inside a ball" — exactly what these two
//! routines provide. Dimensions here are tiny (4), so plain `f64`
//! Gram–Schmidt is accurate enough as long as the caller keeps the weighted
//! basis conditioned (the grid module rescales each constraint direction to
//! unit size first).

/// A rank-`N` lattice basis over `R^N`, rows are basis vectors, together
/// with the integer transform back to the caller's original coordinates.
#[derive(Clone, Debug)]
pub struct Basis<const N: usize> {
    /// Basis vectors (rows), in the working (weighted) coordinates.
    pub vecs: [[f64; N]; N],
    /// Integer transform: working basis row `i` equals
    /// `Σ_j transform[i][j] · original_basis[j]`.
    pub transform: [[i64; N]; N],
}

impl<const N: usize> Basis<N> {
    /// Creates a basis with the identity transform.
    pub fn new(vecs: [[f64; N]; N]) -> Self {
        let mut transform = [[0i64; N]; N];
        for (i, row) in transform.iter_mut().enumerate() {
            row[i] = 1;
        }
        Basis { vecs, transform }
    }

    /// LLL-reduces the basis in place (Lovász δ = 0.99 for strong
    /// reduction at these tiny dimensions).
    pub fn lll_reduce(&mut self) {
        let delta = 0.99f64;
        let n = N;
        let mut k = 1usize;
        let mut guard = 0usize;
        while k < n {
            guard += 1;
            if guard > 10_000 {
                break; // defensive: numerically stuck input
            }
            let (bstar, mu) = gram_schmidt(&self.vecs);
            // Size-reduce row k against rows k-1..0.
            for j in (0..k).rev() {
                let q = mu[k][j].round();
                if q != 0.0 {
                    for d in 0..n {
                        self.vecs[k][d] -= q * self.vecs[j][d];
                    }
                    let qi = q as i64;
                    for d in 0..n {
                        self.transform[k][d] -= qi * self.transform[j][d];
                    }
                }
            }
            let (bstar2, mu2) = gram_schmidt(&self.vecs);
            let bk = norm_sqr(&bstar2[k]);
            let bk1 = norm_sqr(&bstar2[k - 1]);
            let m = mu2[k][k - 1];
            let _ = (bstar, mu);
            if bk >= (delta - m * m) * bk1 {
                k += 1;
            } else {
                self.vecs.swap(k, k - 1);
                self.transform.swap(k, k - 1);
                k = k.max(2) - 1;
            }
        }
    }

    /// Enumerates every lattice point within Euclidean distance `radius`
    /// of `target`, returning the integer coordinates **in the original
    /// basis** for each point found.
    ///
    /// The caller bounds the output size through the geometry; a defensive
    /// cap of `max_points` stops pathological inputs.
    pub fn enumerate_near(
        &self,
        target: [f64; N],
        radius: f64,
        max_points: usize,
    ) -> Vec<[i64; N]> {
        let (bstar, mu) = gram_schmidt(&self.vecs);
        let bnorm: Vec<f64> = bstar.iter().map(norm_sqr).collect();
        if bnorm.iter().any(|&b| b < 1e-280) {
            return Vec::new(); // degenerate basis
        }
        // Target in Gram-Schmidt coordinates.
        let mut tau = [0.0f64; N];
        for i in 0..N {
            tau[i] = dot(&target, &bstar[i]) / bnorm[i];
        }
        let mut out = Vec::new();
        let mut coeff = [0i64; N];
        self.dfs(
            N,
            radius * radius,
            &tau,
            &mu,
            &bnorm,
            &mut coeff,
            &mut out,
            max_points,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        level: usize,
        budget: f64,
        tau: &[f64; N],
        mu: &[[f64; N]; N],
        bnorm: &[f64],
        coeff: &mut [i64; N],
        out: &mut Vec<[i64; N]>,
        max_points: usize,
    ) {
        if out.len() >= max_points {
            return;
        }
        if level == 0 {
            // Convert coefficients (w.r.t. working rows) to the original
            // integer basis via the transform.
            let mut orig = [0i64; N];
            for (c, row) in coeff.iter().zip(self.transform.iter()) {
                for (o, t) in orig.iter_mut().zip(row.iter()) {
                    *o += c * t;
                }
            }
            out.push(orig);
            return;
        }
        let i = level - 1;
        // Center of the interval for c_i given the already-fixed c_j (j > i).
        let mut center = tau[i];
        for j in (i + 1)..N {
            center -= coeff[j] as f64 * mu[j][i];
        }
        let half = (budget / bnorm[i]).max(0.0).sqrt();
        let lo = (center - half).ceil() as i64;
        let hi = (center + half).floor() as i64;
        for c in lo..=hi {
            if out.len() >= max_points {
                // Stop scanning once the output cap is reached — at large
                // denominator exponents a single interval can hold billions
                // of integers, and iterating them (even with pruned
                // recursion) would stall the caller.
                break;
            }
            let d = c as f64 - center;
            let used = d * d * bnorm[i];
            if used <= budget {
                coeff[i] = c;
                self.dfs(
                    level - 1,
                    budget - used,
                    tau,
                    mu,
                    bnorm,
                    coeff,
                    out,
                    max_points,
                );
                coeff[i] = 0;
            }
        }
    }
}

/// Classic Gram–Schmidt returning orthogonal vectors and the μ matrix.
fn gram_schmidt<const N: usize>(vecs: &[[f64; N]; N]) -> ([[f64; N]; N], [[f64; N]; N]) {
    let mut bstar = *vecs;
    let mut mu = [[0.0f64; N]; N];
    for i in 0..N {
        for j in 0..i {
            let denom = norm_sqr(&bstar[j]);
            let m = if denom > 1e-280 {
                dot(&vecs[i], &bstar[j]) / denom
            } else {
                0.0
            };
            mu[i][j] = m;
            let prev = bstar[j];
            for (cur, p) in bstar[i].iter_mut().zip(prev.iter()) {
                *cur -= m * p;
            }
        }
    }
    (bstar, mu)
}

fn dot<const N: usize>(a: &[f64; N], b: &[f64; N]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

fn norm_sqr<const N: usize>(a: &[f64; N]) -> f64 {
    dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lll_shortens_skewed_basis() {
        // A deliberately skewed 2D-ish basis embedded in 4D.
        let mut b = Basis::new([
            [1.0, 1000.0, 0.0, 0.0],
            [0.0, 1001.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        b.lll_reduce();
        let shortest = b
            .vecs
            .iter()
            .map(|v| norm_sqr(v).sqrt())
            .fold(f64::INFINITY, f64::min);
        // (b2 - b1) = (-1, 1, 0, 0) has length √2.
        assert!(shortest < 2.0, "shortest after LLL = {shortest}");
    }

    #[test]
    fn transform_tracks_row_ops() {
        let orig = [
            [3.0, 1.0, 0.0, 0.2],
            [1.0, 2.0, 0.3, 0.0],
            [0.0, 1.0, 4.0, 1.0],
            [1.0, 0.0, 1.0, 5.0],
        ];
        let mut b = Basis::new(orig);
        b.lll_reduce();
        // Every reduced row must equal the transform applied to the
        // original rows.
        for i in 0..4 {
            for (d, got) in b.vecs[i].iter().enumerate() {
                let want: f64 = (0..4)
                    .map(|j| b.transform[i][j] as f64 * orig[j][d])
                    .sum();
                assert!((got - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn enumerate_finds_integer_points_near_target() {
        // The integer lattice Z^4: points within 1.2 of (0.4, 0.1, 0, 0).
        let b = Basis::new([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let pts = b.enumerate_near([0.4, 0.1, 0.0, 0.0], 1.2, 1000);
        // Must include the origin and (1,0,0,0).
        assert!(pts.contains(&[0, 0, 0, 0]));
        assert!(pts.contains(&[1, 0, 0, 0]));
        // All returned points really are within the ball.
        for p in &pts {
            let d2: f64 = [
                p[0] as f64 - 0.4,
                p[1] as f64 - 0.1,
                p[2] as f64,
                p[3] as f64,
            ]
            .iter()
            .map(|x| x * x)
            .sum();
            assert!(d2 <= 1.2f64 * 1.2 + 1e-9);
        }
    }

    #[test]
    fn enumerate_respects_skewed_transform() {
        // Lattice generated by (2, 0, 0, 0) and (1, 1, 0, 0) (plus unit z,w):
        // the point (3, 1, 0, 0) = 1*(2,0) + 1*(1,1) should be found with
        // original coordinates (1, 1, 0, 0).
        let mut b = Basis::new([
            [2.0, 0.0, 0.0, 0.0],
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        b.lll_reduce();
        let pts = b.enumerate_near([3.0, 1.0, 0.0, 0.0], 0.1, 10);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0], [1, 1, 0, 0]);
    }

    #[test]
    fn enumeration_count_matches_ball_volume() {
        // Z^4 points in a ball of radius 2.5 around origin: count by brute
        // force and compare.
        let b = Basis::new([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let pts = b.enumerate_near([0.0; 4], 2.5, 100_000);
        let mut brute = 0usize;
        for a in -3i64..=3 {
            for bb in -3i64..=3 {
                for c in -3i64..=3 {
                    for d in -3i64..=3 {
                        if (a * a + bb * bb + c * c + d * d) as f64 <= 2.5 * 2.5 {
                            brute += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(pts.len(), brute);
    }
}
