//! Solving the relative norm equation `t†t = ξ` in `Z[ω]`.
//!
//! Given a doubly non-negative `ξ ∈ Z[√2]` (produced as `2^k − v†v` by the
//! grid stage), find `t ∈ Z[ω]` whose squared modulus is exactly `ξ`. The
//! classic construction factors the absolute norm `N(ξ) ∈ Z` and assembles
//! `t` from prime elements of `Z[ω]`, split according to the residue of
//! each rational prime mod 8:
//!
//! | p mod 8 | split of p | prime element |
//! |---|---|---|
//! | 2 | ramified | `δ = 1 + ω`, `δ†δ = √2·λ` |
//! | 1 | splits completely | `gcd(p, x − ω)` with `x⁴ ≡ −1` |
//! | 3 | inert in `Z[√2]`, splits in `Z[i√2]` | `gcd(p, x − i√2)` with `x² ≡ −2` |
//! | 5 | inert in `Z[√2]`, splits in `Z[i]` | `gcd(p, x − i)` with `x² ≡ −1` |
//! | 7 | splits in `Z[√2]`, inert above | solvable only to even powers |
//!
//! The final unit mismatch is always an even power of `λ = 1 + √2`
//! (total positivity), absorbed by multiplying `t` with `λ^{m}`.

use rings::numtheory::{factor, root8, sqrt_mod};
use rings::{ZOmega, ZRoot2};

/// Upper bound on rational primes we attempt to split: beyond this the
/// internal `Z[ω]` gcd products would overflow `i128`.
const MAX_PRIME: u128 = 1 << 40;

/// Solves `t†t = ξ` for `t ∈ Z[ω]`.
///
/// Returns `None` when the equation has no solution (e.g. a `p ≡ 7 mod 8`
/// prime divides `ξ` to an odd power) or when factoring fails; the caller
/// simply moves on to the next grid candidate.
///
/// ```
/// use rings::{ZRoot2, ZOmega};
/// use gridsynth::diophantine::solve_norm_equation;
///
/// // ξ = 2 = (√2)†(√2): solvable.
/// let t = solve_norm_equation(ZRoot2::from_int(2)).unwrap();
/// assert_eq!(t.norm_zroot2(), ZRoot2::from_int(2));
/// ```
pub fn solve_norm_equation(xi: ZRoot2) -> Option<ZOmega> {
    if xi.is_zero() {
        return Some(ZOmega::ZERO);
    }
    if !xi.is_doubly_nonneg() {
        return None;
    }
    // Overflow guard: N(ξ) = a² − 2b² must fit i128 with headroom for the
    // gcd arithmetic downstream. Coordinates beyond 2^60 signal a caller
    // that walked k far past any practical synthesis scale.
    if xi.a.unsigned_abs() > (1u128 << 60) || xi.b.unsigned_abs() > (1u128 << 60) {
        return None;
    }
    let n_abs = xi.norm();
    debug_assert!(n_abs >= 0, "norm of doubly positive element");
    let n = n_abs as u128;
    let factors = factor(n)?;

    let mut rem = xi;
    let mut t = ZOmega::ONE;

    for &(p, _) in &factors {
        if p == 2 {
            // Ramified: strip √2 factors; δ = 1 + ω has δ†δ = √2·λ.
            let delta = ZOmega::new(1, 1, 0, 0);
            while let Some(q) = div_sqrt2_zroot2(rem) {
                rem = q;
                t = t * delta;
            }
            continue;
        }
        if p > MAX_PRIME {
            return None;
        }
        match p % 8 {
            1 => {
                // p splits completely. τ†τ is one of the two Z[√2]-primes
                // above p; its conj2-partner covers the other.
                let x = root8(p)?;
                let tau = gcd_with_int(p, ZOmega::new(x as i128, -1, 0, 0))?;
                let q = tau.norm_zroot2();
                if q.norm().unsigned_abs() != p {
                    return None; // splitting failed (defensive)
                }
                strip_and_multiply(&mut rem, &mut t, q, tau)?;
                strip_and_multiply(&mut rem, &mut t, q.conj2(), tau.conj2())?;
            }
            3 => {
                // Inert in Z[√2]; τ from the split of p in Z[i√2].
                let x = sqrt_mod(p - 2, p)?; // sqrt of −2
                let tau = gcd_with_int(p, ZOmega::new(x as i128, -1, 0, -1))?;
                strip_and_multiply(&mut rem, &mut t, ZRoot2::from_int(p as i128), tau)?;
            }
            5 => {
                // Inert in Z[√2]; τ from the split of p in Z[i].
                let x = sqrt_mod(p - 1, p)?; // sqrt of −1
                let tau = gcd_with_int(p, ZOmega::new(x as i128, 0, -1, 0))?;
                strip_and_multiply(&mut rem, &mut t, ZRoot2::from_int(p as i128), tau)?;
            }
            7 => {
                // Splits in Z[√2] into q·q•, both inert upstairs: only even
                // powers are relative norms (of the real element q itself).
                let x = sqrt_mod(2, p)?;
                let q = ZRoot2::from_int(p as i128).gcd(ZRoot2::new(x as i128, -1));
                if q.norm().unsigned_abs() != p {
                    return None;
                }
                strip_even_power(&mut rem, &mut t, q)?;
                strip_even_power(&mut rem, &mut t, q.conj2())?;
            }
            _ => unreachable!("odd prime"),
        }
    }

    // The leftover must be a totally positive unit λ^{2m}.
    let rho = t.norm_zroot2();
    let u = rem_unit(xi, rho)?;
    let (sign, n_lambda) = u.unit_decompose()?;
    if sign != 1 || n_lambda % 2 != 0 {
        return None;
    }
    let adj = ZRoot2::lambda_pow(n_lambda / 2);
    let t = t * ZOmega::from_zroot2(adj);
    // Exact verification — the contract of this function.
    if t.norm_zroot2() == xi {
        Some(t)
    } else {
        None
    }
}

/// Divides a `Z[√2]` element by `√2` exactly (`(a + b√2)/√2 = b + (a/2)√2`).
fn div_sqrt2_zroot2(x: ZRoot2) -> Option<ZRoot2> {
    if x.a % 2 != 0 {
        return None;
    }
    Some(ZRoot2::new(x.b, x.a / 2))
}

/// `gcd(p, z)` in `Z[ω]` for a rational integer `p`.
fn gcd_with_int(p: u128, z: ZOmega) -> Option<ZOmega> {
    let g = ZOmega::from_int(p as i128).gcd(z);
    if g.is_unit() {
        None
    } else {
        Some(g)
    }
}

/// Strips all factors of the `Z[√2]`-prime `q` from `rem`, multiplying
/// `t` by `tau` once per factor. Requires `tau†tau` associate to `q`.
fn strip_and_multiply(
    rem: &mut ZRoot2,
    t: &mut ZOmega,
    q: ZRoot2,
    tau: ZOmega,
) -> Option<()> {
    let mut guard = 0;
    while let Some(next) = rem.exact_div(q) {
        *rem = next;
        *t = *t * tau;
        guard += 1;
        if guard > 256 {
            return None;
        }
    }
    Some(())
}

/// Strips factors of `q` from `rem` requiring an even count; multiplies
/// `t` by the real element `q` once per *pair*.
fn strip_even_power(rem: &mut ZRoot2, t: &mut ZOmega, q: ZRoot2) -> Option<()> {
    let mut count = 0u32;
    let mut guard = 0;
    while let Some(next) = rem.exact_div(q) {
        *rem = next;
        count += 1;
        guard += 1;
        if guard > 256 {
            return None;
        }
    }
    if !count.is_multiple_of(2) {
        return None; // odd power of an inert prime: unsolvable
    }
    for _ in 0..count / 2 {
        *t = *t * ZOmega::from_zroot2(q);
    }
    Some(())
}

/// The unit `ξ / ρ` when `ρ` exactly divides `ξ`, else `None`.
fn rem_unit(xi: ZRoot2, rho: ZRoot2) -> Option<ZRoot2> {
    if rho.is_zero() {
        return None;
    }
    let u = xi.exact_div(rho)?;
    if u.is_unit() {
        Some(u)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_constructed_instances() {
        // For random t, ξ = t†t must be solvable (maybe by a different t').
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let t0 = ZOmega::new(
                rng.gen_range(-9i128..9),
                rng.gen_range(-9i128..9),
                rng.gen_range(-9i128..9),
                rng.gen_range(-9i128..9),
            );
            if t0.is_zero() {
                continue;
            }
            let xi = t0.norm_zroot2();
            let t = solve_norm_equation(xi)
                .unwrap_or_else(|| panic!("ξ = {xi} from t0 = {t0} must be solvable"));
            assert_eq!(t.norm_zroot2(), xi);
        }
    }

    #[test]
    fn simple_integers() {
        // 2 = |√2|².
        assert!(solve_norm_equation(ZRoot2::from_int(2)).is_some());
        // 5 ≡ 5 mod 8 → solvable (5 = |2+i|²).
        assert!(solve_norm_equation(ZRoot2::from_int(5)).is_some());
        // 3 ≡ 3 mod 8 → 3 = |1 + i√2|².
        assert!(solve_norm_equation(ZRoot2::from_int(3)).is_some());
        // 7 ≡ 7 mod 8 to the first power is NOT a relative norm.
        assert!(solve_norm_equation(ZRoot2::from_int(7)).is_none());
        // But 49 = 7² is.
        assert!(solve_norm_equation(ZRoot2::from_int(49)).is_some());
    }

    #[test]
    fn rejects_negative() {
        assert!(solve_norm_equation(ZRoot2::from_int(-3)).is_none());
        // 1 − √2 < 0.
        assert!(solve_norm_equation(ZRoot2::new(1, -1)).is_none());
        // 1 + √2 > 0 but conjugate 1 − √2 < 0.
        assert!(solve_norm_equation(ZRoot2::new(1, 1)).is_none());
    }

    #[test]
    fn zero_is_trivial() {
        assert_eq!(solve_norm_equation(ZRoot2::ZERO), Some(ZOmega::ZERO));
    }

    #[test]
    fn solution_verified_exactly() {
        // λ²·2 is doubly positive: (1+√2)²·2 = (3+2√2)·2 = 6+4√2.
        let xi = ZRoot2::new(6, 4);
        let t = solve_norm_equation(xi).expect("solvable");
        assert_eq!(t.norm_zroot2(), xi);
    }
}
