//! A Ross–Selinger style `gridsynth`: near-optimal ancilla-free Clifford+T
//! approximation of `Rz(θ)` rotations.
//!
//! This is the paper's primary baseline. The pipeline is the classic
//! number-theoretic one:
//!
//! 1. [`grid`] — for a rising denominator exponent `k`, enumerate candidates
//!    `u = v/√2^k`, `v ∈ Z[ω]`, inside the ε-slice of the unit disk around
//!    `e^{−iθ/2}` whose √2-conjugate lies in the unit disk. We solve this
//!    two-dimensional grid problem with a weighted 4-D lattice reduction
//!    (LLL + Fincke–Pohst in [`lattice`]) rather than Ross–Selinger's
//!    bespoke grid operators; the asymptotics are the same and the code is
//!    reusable.
//! 2. [`diophantine`] — solve `t†t = ξ` with `ξ = 2^k − v†v ∈ Z[√2]` by
//!    factoring the absolute norm and assembling prime elements of `Z[ω]`.
//! 3. [`exact_synth`] — Kliuchnikov–Maslov–Mosca exact synthesis of the
//!    resulting unitary `[[u, −t†], [t, u†]]` into a Clifford+T sequence.
//!
//! The headline API is [`synthesize_rz`]; [`synthesize_u3`] lowers an
//! arbitrary unitary through three `Rz` syntheses (paper Eq. 1) — the
//! workflow trasyn improves on.
//!
//! ```
//! use gridsynth::synthesize_rz;
//!
//! let r = synthesize_rz(0.813, 1e-2).expect("synthesizable");
//! assert!(r.error <= 1e-2);
//! assert!(r.seq.t_count() > 0);
//! ```

pub mod diophantine;
pub mod exact_synth;
pub mod grid;
pub mod lattice;
pub mod rz;
pub mod u3;

pub use rz::{synthesize_rz, synthesize_rz_with, RzOptions, RzSynthesis};
pub use u3::{synthesize_u3, synthesize_u3_with, U3Synthesis};
