//! The two-dimensional grid problem of `gridsynth`.
//!
//! For a denominator exponent `k`, find `v ∈ Z[ω]` such that
//! `u = v/√2^k` lies in the ε-slice
//! `{u : |u| ≤ 1, Re(z̄·u) ≥ 1 − ε²/2}` around the target phase
//! `z = e^{−iθ/2}`, while the √2-conjugate `v•/√2^k` lies in the unit
//! disk. Each coordinate quadruple `(a₀,a₁,a₂,a₃)` of `Z[ω]` embeds into
//! `R⁴` as `(x, y, x•, y•)`; after rotating `(x, y)` into the slice frame
//! and rescaling every constraint direction to unit half-width, the
//! problem becomes "lattice points in a ball", which
//! [`crate::lattice`] solves by LLL + enumeration.

use crate::lattice::Basis;
use qmath::Complex64;
use rings::{ZOmega, ZRoot2};
use std::f64::consts::FRAC_1_SQRT_2;

/// A grid-problem candidate: the exact numerator `v` and its numeric
/// distance from the scaled target.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The numerator `v ∈ Z[ω]` of `u = v/√2^k`.
    pub v: ZOmega,
    /// `|u − z|` where `z = e^{−iθ/2}`.
    pub dist: f64,
}

/// The ε-slice region around `z = e^{−iθ/2}`.
#[derive(Clone, Copy, Debug)]
pub struct EpsilonRegion {
    /// Target phase `e^{−iθ/2}`.
    pub z: Complex64,
    /// Synthesis error bound.
    pub eps: f64,
}

impl EpsilonRegion {
    /// Creates the region for `Rz(θ)` at error `ε`.
    pub fn new(theta: f64, eps: f64) -> Self {
        EpsilonRegion {
            z: Complex64::cis(-theta / 2.0),
            eps,
        }
    }

    /// Numeric membership test (the exact pipeline re-verifies downstream).
    pub fn contains(&self, u: Complex64) -> bool {
        let dot = self.z.re * u.re + self.z.im * u.im;
        dot >= 1.0 - self.eps * self.eps / 2.0 - 1e-12 && u.norm_sqr() <= 1.0 + 1e-9
    }
}

/// Enumerates grid candidates at denominator exponent `k`, sorted by
/// distance from the target. At most `max_candidates` are returned.
///
/// Every returned `v` exactly satisfies the doubly-positivity precondition
/// `ξ = 2^k − v†v ≥ 0` and `ξ• ≥ 0` needed by the Diophantine step.
pub fn candidates(theta: f64, eps: f64, k: u32, max_candidates: usize) -> Vec<Candidate> {
    if k > 100 {
        // Beyond k = 100 the exact checks would need >i128 integers; no
        // practical ε (≥ 1e-7) ever gets close.
        return Vec::new();
    }
    let region = EpsilonRegion::new(theta, eps);
    let z = region.z;
    let s = std::f64::consts::SQRT_2.powi(k as i32);
    let eps2 = eps * eps;
    // Slice frame: c1 along z (thin), c2 across (chord), conj coordinates
    // bounded by the unit disk of radius s.
    let hw1 = (eps2 / 4.0) * s; // half-width of the thin direction
    let m1 = (1.0 - eps2 / 4.0) * s; // its center
    let chord = (eps2 - eps2 * eps2 / 4.0).max(1e-300).sqrt().min(1.0);
    let hw2 = chord * s;

    let weight = |p: [f64; 4]| -> [f64; 4] {
        [
            (z.re * p[0] + z.im * p[1]) / hw1,
            (-z.im * p[0] + z.re * p[1]) / hw2,
            p[2] / s,
            p[3] / s,
        ]
    };

    // Embedding of the Z[ω] coordinate basis into (x, y, x•, y•).
    let h = FRAC_1_SQRT_2;
    let raw = [
        [1.0, 0.0, 1.0, 0.0],   // a0
        [h, h, -h, -h],         // a1 (ω)
        [0.0, 1.0, 0.0, 1.0],   // a2 (i)
        [-h, h, h, -h],         // a3 (ω³)
    ];
    let mut basis = Basis::new([
        weight(raw[0]),
        weight(raw[1]),
        weight(raw[2]),
        weight(raw[3]),
    ]);
    basis.lll_reduce();

    // Target: center of the slice, conjugate at the disk center (origin).
    let target = weight([z.re * m1, z.im * m1, 0.0, 0.0]);
    // The weighted region fits in the ∞-ball of radius 1 around the
    // target, which the 2-ball of radius 2 covers in 4-D.
    let points = basis.enumerate_near(target, 2.0, 200_000);

    let two_k = ZRoot2::from_int(1i128 << k);
    let mut out: Vec<Candidate> = Vec::new();
    for p in points {
        let v = ZOmega::new(p[0] as i128, p[1] as i128, p[2] as i128, p[3] as i128);
        let u = v.to_complex().scale(1.0 / s);
        if !region.contains(u) {
            continue;
        }
        // Exact feasibility: ξ = 2^k − v†v must be doubly non-negative
        // (covers both |u| ≤ 1 and |u•| ≤ 1 exactly).
        let xi = two_k - v.norm_zroot2();
        if !xi.is_doubly_nonneg() {
            continue;
        }
        let dist = (u - z).abs();
        out.push(Candidate { v, dist });
    }
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    out.truncate(max_candidates);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_contains_target() {
        let r = EpsilonRegion::new(0.7, 1e-2);
        assert!(r.contains(r.z));
        // A point 2ε away along the chord is outside.
        let off = r.z * Complex64::cis(2.5e-2);
        assert!(!r.contains(off));
    }

    #[test]
    fn candidates_satisfy_constraints() {
        for &(theta, eps) in &[(0.7f64, 0.2f64), (2.1, 0.05), (-1.3, 0.1)] {
            let mut found = false;
            for k in 0..=24u32 {
                let cs = candidates(theta, eps, k, 16);
                for c in &cs {
                    let s = std::f64::consts::SQRT_2.powi(k as i32);
                    let u = c.v.to_complex().scale(1.0 / s);
                    assert!(u.norm_sqr() <= 1.0 + 1e-6);
                    let z = Complex64::cis(-theta / 2.0);
                    assert!(z.re * u.re + z.im * u.im >= 1.0 - eps * eps / 2.0 - 1e-6);
                    found = true;
                }
                if found {
                    break;
                }
            }
            assert!(found, "no candidates for theta={theta}, eps={eps}");
        }
    }

    #[test]
    fn k_zero_includes_identity_like_points() {
        // At k = 0 with a huge epsilon, ω^j points should appear.
        let cs = candidates(0.0, 0.9, 0, 64);
        assert!(!cs.is_empty());
        // The best candidate at θ=0 is v = 1 (u = 1).
        assert_eq!(cs[0].v, ZOmega::from_int(1));
    }

    #[test]
    fn tighter_eps_needs_larger_k() {
        // For eps = 1e-3, small k must yield nothing beyond trivial points
        // that fail the slice; by k ~ 15 candidates should exist. This is
        // a smoke test of scaling behaviour rather than exact k values.
        let theta = 0.9371;
        let mut first_k = None;
        for k in 0..=40u32 {
            if !candidates(theta, 1e-3, k, 4).is_empty() {
                first_k = Some(k);
                break;
            }
        }
        let k = first_k.expect("must find candidates by k=40");
        assert!(k >= 8, "surprisingly small k = {k} for eps=1e-3");
    }
}
