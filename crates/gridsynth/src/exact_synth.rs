//! Kliuchnikov–Maslov–Mosca exact synthesis.
//!
//! Any 2×2 unitary with entries in `D[ω] = Z[ω, 1/√2]` (and determinant a
//! power of ω) is *exactly* a Clifford+T product. The synthesis recursion
//! reduces the smallest denominator exponent (sde): at each step exactly
//! one `j ∈ {0..3}` makes `H·T^{−j}·U` have smaller sde; recording `T^j H`
//! and recursing terminates at sde 0, where the residue is a Clifford
//! (times one of the eight global phases `ω^m`), finished by table lookup.

use gates::clifford::clifford_lookup;
use gates::{ExactMat2, Gate, GateSeq};
use rings::DOmega;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Exactly synthesizes a Clifford+T sequence for `u`, up to global phase.
///
/// Returns `None` if `u` is not in the Clifford+T group (not expected for
/// matrices produced by the grid + Diophantine pipeline — unitarity with
/// `D[ω]` entries is sufficient by the KMM theorem — so `None` signals a
/// caller bug or numerical misuse).
///
/// ```
/// use gates::{ExactMat2, Gate, GateSeq};
/// use gridsynth::exact_synth::exact_synthesize;
///
/// let seq: GateSeq = [Gate::H, Gate::T, Gate::H, Gate::T, Gate::T, Gate::H]
///     .into_iter()
///     .collect();
/// let m = ExactMat2::from_seq(&seq);
/// let out = exact_synthesize(m).unwrap();
/// assert!(out
///     .matrix()
///     .approx_eq_phase(&seq.matrix(), 1e-9));
/// ```
pub fn exact_synthesize(u: ExactMat2) -> Option<GateSeq> {
    let mut m = u;
    let mut out = GateSeq::new();
    let h = ExactMat2::gate(Gate::H);
    // T^j for j = 0..8 (T^8 = I up to nothing: diag(1, ω^8) = I exactly).
    let mut tpow = [ExactMat2::identity(); 8];
    for j in 1..8 {
        tpow[j] = tpow[j - 1] * ExactMat2::gate(Gate::T);
    }
    let mut guard = 0usize;
    // Reduce the *first column's* denominator exponent with `H·T^{-j}`
    // steps. A single step does not always suffice: some valid states
    // have a residue pattern mod 2 outside the ω-orbit of their partner,
    // and need one sde-preserving step before a reducing one — hence the
    // two-step lookahead. Empirically (and consistent with the
    // Matsumoto–Amano structure) two steps always reach a strict
    // reduction; the precomputed small-state table is kept as a final
    // safety net.
    'reduce: while column_sde(&m) > 0 {
        guard += 1;
        if guard > 4096 {
            return None;
        }
        let k = column_sde(&m);
        // One-step reduction.
        for j in 0..4usize {
            let next = h * tpow[(8 - j) % 8] * m;
            if column_sde(&next) < k {
                // m = T^j · H · next.
                push_t_power(&mut out, j);
                out.push(Gate::H);
                m = next;
                continue 'reduce;
            }
        }
        // Two-step lookahead: an sde-preserving move that unlocks a
        // reducing one.
        for j1 in 0..4usize {
            let mid = h * tpow[(8 - j1) % 8] * m;
            if column_sde(&mid) > k {
                continue;
            }
            for j2 in 0..4usize {
                let next = h * tpow[(8 - j2) % 8] * mid;
                if column_sde(&next) < k {
                    // m = T^{j1}·H · T^{j2}·H · next.
                    push_t_power(&mut out, j1);
                    out.push(Gate::H);
                    push_t_power(&mut out, j2);
                    out.push(Gate::H);
                    m = next;
                    continue 'reduce;
                }
            }
        }
        // Safety net for small denominators: peel a table state.
        if k <= 3 {
            let (seq, prefix) = state_lookup(&[m.e[0], m.e[2]])?;
            out.extend_seq(&seq);
            m = prefix.adjoint() * m;
            break 'reduce;
        }
        return None;
    }
    // sde 0: entries lie in Z[ω] itself, so the matrix is monomial —
    // a Clifford times a power of T (e.g. T = diag(1, ω) has sde 0 but is
    // not Clifford). Peel the T power: m = C·T^j for exactly one j ∈ 0..8.
    for j in 0..8usize {
        let tinv = tpow[(8 - j) % 8];
        let candidate = (m * tinv).phase_canonical();
        if let Some(cliff) = clifford_lookup(&candidate) {
            out.extend_seq(cliff);
            push_t_power(&mut out, j);
            return Some(out);
        }
    }
    None
}

/// Denominator exponent of the first column (entries `m00`, `m10`).
fn column_sde(m: &ExactMat2) -> u32 {
    m.e[0].k().max(m.e[2].k())
}

/// A unit column vector over `D[ω]`.
type ColState = [DOmega; 2];

/// Canonical key of a state modulo the 8 global phases `ω^j`.
fn state_key(s: &ColState) -> ([i128; 8], u32) {
    let mut best: Option<([i128; 8], u32)> = None;
    for j in 0..8 {
        let a = s[0].mul_omega_pow(j);
        let b = s[1].mul_omega_pow(j);
        let k = a.k().max(b.k());
        let (na, nb) = (a.num_at(k).expect("max k"), b.num_at(k).expect("max k"));
        let key = (
            [na.a0, na.a1, na.a2, na.a3, nb.a0, nb.a1, nb.a2, nb.a3],
            k,
        );
        if best.as_ref().is_none_or(|b0| key < *b0) {
            best = Some(key);
        }
    }
    best.expect("eight phases")
}

/// The base-case table: every unit column with sde ≤ 3, mapped to a gate
/// sequence whose matrix has that column (up to global phase) as its
/// first column. Built once by BFS from `e₁` over left multiplication by
/// `{H, T, S, X}`; intermediate states up to sde 5 are explored because
/// some sde ≤ 3 states are only reachable through higher denominators.
fn state_table() -> &'static HashMap<([i128; 8], u32), GateSeq> {
    static CELL: OnceLock<HashMap<([i128; 8], u32), GateSeq>> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut table: HashMap<([i128; 8], u32), GateSeq> = HashMap::new();
        let mut visited: std::collections::HashSet<([i128; 8], u32)> =
            std::collections::HashSet::new();
        let e1: ColState = [DOmega::ONE, DOmega::ZERO];
        let mut frontier: Vec<(ColState, GateSeq)> = vec![(e1, GateSeq::new())];
        visited.insert(state_key(&e1));
        table.insert(state_key(&e1), GateSeq::new());
        let gates = [Gate::H, Gate::T, Gate::S, Gate::X];
        // Run to frontier exhaustion: sde ≤ 3 states can need ~20-gate
        // paths (their minimal T-count is ~2·sde plus Clifford dressing),
        // and some are only reachable through sde-5 intermediates. The
        // visited set bounds the work to the finite state count.
        for _depth in 0..64 {
            let mut next = Vec::new();
            for (s, seq) in &frontier {
                for &g in &gates {
                    let gm = ExactMat2::gate(g);
                    let ns: ColState = [
                        gm.e[0] * s[0] + gm.e[1] * s[1],
                        gm.e[2] * s[0] + gm.e[3] * s[1],
                    ];
                    let k = ns[0].k().max(ns[1].k());
                    if k > 5 {
                        continue;
                    }
                    let key = state_key(&ns);
                    if !visited.insert(key) {
                        continue;
                    }
                    // The matrix of `new_seq` is G·M_s, whose first column
                    // is the new state (when started from e₁).
                    let mut new_seq = GateSeq::new();
                    new_seq.push(g);
                    new_seq.extend_seq(seq);
                    if k <= 3 {
                        table.insert(key, new_seq.clone());
                    }
                    next.push((ns, new_seq));
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        table
    })
}

/// Finds the table sequence whose matrix's first column matches `col` up
/// to a global phase; returns the sequence and its exact matrix.
fn state_lookup(col: &ColState) -> Option<(GateSeq, ExactMat2)> {
    let seq = state_table().get(&state_key(col))?.clone();
    let m = ExactMat2::from_seq(&seq);
    Some((seq, m))
}

/// Appends the canonical minimal-gate form of `T^j` (`j ∈ 0..8`):
/// `T⁰=I, T¹=T, T²=S, T³=S·T, T⁴=Z, T⁵=Z·T, T⁶=S†, T⁷=T†`.
fn push_t_power(out: &mut GateSeq, j: usize) {
    match j % 8 {
        0 => {}
        1 => out.push(Gate::T),
        2 => out.push(Gate::S),
        3 => {
            out.push(Gate::S);
            out.push(Gate::T);
        }
        4 => out.push(Gate::Z),
        5 => {
            out.push(Gate::Z);
            out.push(Gate::T);
        }
        6 => out.push(Gate::Sdg),
        7 => out.push(Gate::Tdg),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(rng: &mut StdRng, len: usize) -> GateSeq {
        (0..len)
            .map(|_| Gate::ALL[rng.gen_range(0..Gate::ALL.len())])
            .collect()
    }

    #[test]
    fn resynthesizes_random_products() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let len = rng.gen_range(0..30);
            let seq = random_seq(&mut rng, len);
            let m = ExactMat2::from_seq(&seq);
            let out = exact_synthesize(m).expect("group member must synthesize");
            assert!(
                out.matrix().approx_eq_phase(&seq.matrix(), 1e-8),
                "mismatch for {seq}"
            );
        }
    }

    #[test]
    fn synthesizes_cliffords_with_zero_t() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let seq: GateSeq = (0..10)
                .map(|_| {
                    let cliffords = [Gate::H, Gate::S, Gate::Sdg, Gate::X, Gate::Y, Gate::Z];
                    cliffords[rng.gen_range(0..cliffords.len())]
                })
                .collect();
            let out = exact_synthesize(ExactMat2::from_seq(&seq)).unwrap();
            assert_eq!(out.t_count(), 0, "clifford product gained T gates");
            assert!(out.matrix().approx_eq_phase(&seq.matrix(), 1e-9));
        }
    }

    #[test]
    fn t_count_is_near_input_t_count() {
        // Exact synthesis should not inflate T count beyond the input
        // sequence's (it is the minimal-T normal form up to small slack).
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let seq = random_seq(&mut rng, 40);
            let m = ExactMat2::from_seq(&seq);
            let out = exact_synthesize(m).unwrap();
            assert!(
                out.t_count() <= seq.t_count() + 1,
                "T inflated: {} -> {}",
                seq.t_count(),
                out.t_count()
            );
        }
    }

    #[test]
    fn identity_synthesizes_empty_or_phase() {
        let out = exact_synthesize(ExactMat2::identity()).unwrap();
        assert_eq!(out.t_count(), 0);
        assert!(out
            .matrix()
            .approx_eq_phase(&qmath::Mat2::identity(), 1e-12));
    }

    #[test]
    fn single_t_roundtrip() {
        let out = exact_synthesize(ExactMat2::gate(Gate::T)).unwrap();
        assert_eq!(out.t_count(), 1);
        assert!(out.matrix().approx_eq_phase(&qmath::Mat2::t(), 1e-12));
    }
}
