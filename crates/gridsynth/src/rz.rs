//! The `Rz(θ)` synthesis driver.

use crate::diophantine::solve_norm_equation;
use crate::exact_synth::exact_synthesize;
use crate::grid;
use gates::{ExactMat2, Gate, GateSeq};
use qmath::distance::unitary_distance;
use qmath::Mat2;
use rings::{DOmega, ZRoot2};
use std::f64::consts::FRAC_PI_4;

/// Tuning knobs for [`synthesize_rz_with`].
#[derive(Clone, Copy, Debug)]
pub struct RzOptions {
    /// Largest denominator exponent to try before giving up. The default
    /// (120) corresponds to T counts far beyond any practical ε.
    pub max_k: u32,
    /// How many grid candidates to attempt per exponent.
    pub candidates_per_k: usize,
}

impl Default for RzOptions {
    fn default() -> Self {
        RzOptions {
            max_k: 120,
            candidates_per_k: 24,
        }
    }
}

/// A synthesized `Rz` approximation.
#[derive(Clone, Debug)]
pub struct RzSynthesis {
    /// The Clifford+T sequence (leftmost factor first).
    pub seq: GateSeq,
    /// Achieved unitary distance to `Rz(θ)` (paper Eq. 2).
    pub error: f64,
    /// Denominator exponent of the accepted grid solution (0 for exact
    /// π/4-multiples).
    pub k: u32,
}

impl RzSynthesis {
    /// T count of the synthesized sequence.
    pub fn t_count(&self) -> usize {
        self.seq.t_count()
    }
}

/// Synthesizes `Rz(θ)` to unitary distance ≤ `eps` with default options.
///
/// Angles that are integer multiples of π/4 synthesize exactly with at
/// most one T gate (paper §2.3, footnote 3).
///
/// # Errors
///
/// Returns `None` only if no solution is found within
/// [`RzOptions::max_k`] — practically impossible for `eps ≥ 1e-7`.
pub fn synthesize_rz(theta: f64, eps: f64) -> Option<RzSynthesis> {
    synthesize_rz_with(theta, eps, RzOptions::default())
}

/// Synthesizes `Rz(θ)` with explicit options.
pub fn synthesize_rz_with(theta: f64, eps: f64, opts: RzOptions) -> Option<RzSynthesis> {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    // Exact case: θ a multiple of π/4 (within floating-point noise).
    let steps = theta / FRAC_PI_4;
    if (steps - steps.round()).abs() < 1e-12 {
        let m = (steps.round() as i64).rem_euclid(8) as usize;
        let seq = t_power_seq(m);
        let error = unitary_distance(&Mat2::rz(theta), &seq.matrix());
        return Some(RzSynthesis { seq, error, k: 0 });
    }

    let target = Mat2::rz(theta);
    for k in 0..=opts.max_k {
        for cand in grid::candidates(theta, eps, k, opts.candidates_per_k) {
            prof::work::add(prof::WorkKind::GridCandidates, 1);
            let v = cand.v;
            let xi = ZRoot2::from_int(1i128 << k) - v.norm_zroot2();
            prof::work::add(prof::WorkKind::NormEquations, 1);
            let Some(t) = solve_norm_equation(xi) else {
                continue;
            };
            prof::work::add(prof::WorkKind::NormSolutions, 1);
            // U = [[u, −t†], [t, u†]] with u = v/√2^k: unitary with D[ω]
            // entries and det 1 — exactly synthesizable.
            let u_d = DOmega::new(v, k);
            let t_d = DOmega::new(t, k);
            let m = ExactMat2::new(u_d, -t_d.conj(), t_d, u_d.conj());
            let err = unitary_distance(&target, &m.to_mat2());
            if err > eps + 1e-12 {
                continue;
            }
            prof::work::add(prof::WorkKind::ExactSyntheses, 1);
            let Some(seq) = exact_synthesize(m) else {
                continue;
            };
            let seq = seq.simplified();
            return Some(RzSynthesis {
                seq,
                error: err,
                k,
            });
        }
    }
    None
}

/// Canonical minimal sequence for `T^m`, `m ∈ 0..8`.
fn t_power_seq(m: usize) -> GateSeq {
    let gates: &[Gate] = match m {
        0 => &[],
        1 => &[Gate::T],
        2 => &[Gate::S],
        3 => &[Gate::S, Gate::T],
        4 => &[Gate::Z],
        5 => &[Gate::Z, Gate::T],
        6 => &[Gate::Sdg],
        7 => &[Gate::Tdg],
        _ => unreachable!(),
    };
    gates.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_pi_over_4_multiples() {
        for m in 0..8 {
            let theta = m as f64 * FRAC_PI_4;
            let r = synthesize_rz(theta, 1e-4).unwrap();
            // The sqrt in Eq. 2 amplifies ~1e-16 rounding to ~1e-8.
            assert!(r.error < 1e-6, "m={m}: error {}", r.error);
            assert!(r.t_count() <= 1, "m={m}: T count {}", r.t_count());
        }
    }

    #[test]
    fn synthesizes_generic_angle_at_various_eps() {
        let theta = 0.61803398;
        for eps in [0.3, 0.1, 0.03] {
            let r = synthesize_rz(theta, eps).unwrap();
            assert!(
                r.error <= eps + 1e-9,
                "eps={eps}: achieved {}",
                r.error
            );
            let d = unitary_distance(&Mat2::rz(theta), &r.seq.matrix());
            assert!((d - r.error).abs() < 1e-8, "reported error mismatch");
        }
    }

    #[test]
    fn t_count_scales_logarithmically() {
        // #T ≈ 3·log2(1/ε) + O(1) (Ross–Selinger). Check the trend and a
        // generous absolute bound.
        let theta = 1.234567;
        let r1 = synthesize_rz(theta, 1e-1).unwrap();
        let r2 = synthesize_rz(theta, 1e-2).unwrap();
        let r3 = synthesize_rz(theta, 1e-3).unwrap();
        assert!(r1.t_count() <= r2.t_count());
        assert!(r2.t_count() <= r3.t_count());
        let bound = 3.0 * (1e3f64).log2() + 18.0;
        assert!(
            (r3.t_count() as f64) < bound,
            "T count {} exceeds theory bound {bound}",
            r3.t_count()
        );
    }

    #[test]
    fn negative_angles_work() {
        let r = synthesize_rz(-1.9, 5e-2).unwrap();
        assert!(r.error <= 5e-2 + 1e-9);
    }

    #[test]
    fn sequence_contains_only_alphabet_gates() {
        let r = synthesize_rz(0.777, 1e-2).unwrap();
        assert!(!r.seq.is_empty());
        // (Trivially true by type, but verify the matrix too.)
        assert!(r.seq.matrix().is_unitary(1e-9));
    }
}
