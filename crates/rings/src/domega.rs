//! Dyadic cyclotomic numbers `z/√2^k` — entries of exactly synthesizable
//! Clifford+T unitaries.

use crate::zomega::ZOmega;
use qmath::Complex64;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An element of `Z[ω, 1/√2]`, stored as `num / √2^k` and kept reduced
/// (either `k = 0` or `num` not divisible by `√2`).
///
/// The reduced exponent `k` is the *smallest denominator exponent* (sde),
/// the quantity the Kliuchnikov–Maslov–Mosca exact-synthesis recursion
/// drives to zero.
///
/// ```
/// use rings::{DOmega, ZOmega};
/// let half = DOmega::new(ZOmega::from_int(1), 2); // 1/√2² = 1/2
/// assert_eq!((half + half), DOmega::from_int(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DOmega {
    num: ZOmega,
    k: u32,
}

impl DOmega {
    /// Zero.
    pub const ZERO: DOmega = DOmega {
        num: ZOmega::ZERO,
        k: 0,
    };
    /// One.
    pub const ONE: DOmega = DOmega {
        num: ZOmega::ONE,
        k: 0,
    };

    /// Creates `num/√2^k` and reduces.
    pub fn new(num: ZOmega, k: u32) -> Self {
        DOmega { num, k }.reduced()
    }

    /// Embeds an integer.
    pub fn from_int(n: i128) -> Self {
        DOmega {
            num: ZOmega::from_int(n),
            k: 0,
        }
    }

    /// Embeds a `Z[ω]` element.
    pub fn from_zomega(z: ZOmega) -> Self {
        DOmega { num: z, k: 0 }
    }

    /// Numerator after reduction.
    #[inline]
    pub fn num(&self) -> ZOmega {
        self.num
    }

    /// Reduced denominator exponent (the sde).
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    fn reduced(mut self) -> Self {
        if self.num.is_zero() {
            self.k = 0;
            return self;
        }
        while self.k > 0 {
            match self.num.div_sqrt2() {
                Some(q) => {
                    self.num = q;
                    self.k -= 1;
                }
                None => break,
            }
        }
        self
    }

    /// Rescales to the given (larger) denominator exponent, returning the
    /// numerator at that scale. Returns `None` if `k < self.k()`.
    pub fn num_at(&self, k: u32) -> Option<ZOmega> {
        if k < self.k {
            return None;
        }
        let mut z = self.num;
        for _ in 0..(k - self.k) {
            z = z * ZOmega::sqrt2();
        }
        Some(z)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        DOmega {
            num: self.num.conj(),
            k: self.k,
        }
    }

    /// √2-conjugate: also flips the sign of odd powers of the denominator
    /// (`(1/√2)• = −1/√2`).
    pub fn conj2(self) -> Self {
        let mut n = self.num.conj2();
        if self.k % 2 == 1 {
            n = -n;
        }
        DOmega { num: n, k: self.k }
    }

    /// `true` iff zero.
    pub fn is_zero(self) -> bool {
        self.num.is_zero()
    }

    /// Numerical value.
    pub fn to_complex(self) -> Complex64 {
        let scale = 2.0f64.powi(-(self.k as i32) / 2)
            * if self.k % 2 == 1 {
                std::f64::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
        self.num.to_complex().scale(scale)
    }

    /// Squared modulus `z†z` as a dyadic real, returned as
    /// `(numerator ∈ Z[√2] via ZOmega, exponent)` pair — i.e.
    /// `|self|² = num / 2^exp` with `num ∈ Z[√2]`.
    pub fn norm_sqr_dyadic(self) -> (crate::ZRoot2, u32) {
        let n = self.num.norm_zroot2();
        (n, self.k) // |z/√2^k|² = (z†z)/2^k
    }

    /// Multiplication by `ω^j`.
    pub fn mul_omega_pow(self, j: i32) -> Self {
        DOmega {
            num: self.num.mul_omega_pow(j),
            k: self.k,
        }
    }
}

impl Add for DOmega {
    type Output = DOmega;
    fn add(self, r: DOmega) -> DOmega {
        let k = self.k.max(r.k);
        let a = self.num_at(k).expect("k >= self.k");
        let b = r.num_at(k).expect("k >= r.k");
        DOmega::new(a + b, k)
    }
}

impl Sub for DOmega {
    type Output = DOmega;
    fn sub(self, r: DOmega) -> DOmega {
        self + (-r)
    }
}

impl Mul for DOmega {
    type Output = DOmega;
    fn mul(self, r: DOmega) -> DOmega {
        DOmega::new(self.num * r.num, self.k + r.k)
    }
}

impl Neg for DOmega {
    type Output = DOmega;
    fn neg(self) -> DOmega {
        DOmega {
            num: -self.num,
            k: self.k,
        }
    }
}

impl fmt::Display for DOmega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/√2^{}", self.num, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_normalizes() {
        let two_over_two = DOmega::new(ZOmega::from_int(2), 2);
        assert_eq!(two_over_two, DOmega::from_int(1));
        assert_eq!(two_over_two.k(), 0);
    }

    #[test]
    fn arithmetic_matches_complex() {
        let x = DOmega::new(ZOmega::new(3, -1, 2, 5), 3);
        let y = DOmega::new(ZOmega::new(-2, 4, 1, -3), 5);
        assert!((x + y)
            .to_complex()
            .approx_eq(x.to_complex() + y.to_complex(), 1e-9));
        assert!((x * y)
            .to_complex()
            .approx_eq(x.to_complex() * y.to_complex(), 1e-9));
        assert!((x - y)
            .to_complex()
            .approx_eq(x.to_complex() - y.to_complex(), 1e-9));
    }

    #[test]
    fn conj2_handles_odd_k() {
        // (1/√2)• = -1/√2: real part negates.
        let x = DOmega::new(ZOmega::from_int(1), 1);
        let c = x.conj2();
        assert!((c.to_complex().re + x.to_complex().re).abs() < 1e-12);
    }

    #[test]
    fn conj_matches_complex() {
        let x = DOmega::new(ZOmega::new(3, -1, 2, 5), 3);
        assert!(x
            .conj()
            .to_complex()
            .approx_eq(x.to_complex().conj(), 1e-9));
    }

    #[test]
    fn sde_reduces_fully() {
        // (√2)³/√2³ = 1.
        let z = ZOmega::sqrt2() * ZOmega::sqrt2() * ZOmega::sqrt2();
        let x = DOmega::new(z, 3);
        assert_eq!(x, DOmega::ONE);
    }

    #[test]
    fn norm_sqr_dyadic_matches() {
        let x = DOmega::new(ZOmega::new(3, -1, 2, 5), 3);
        let (n, e) = x.norm_sqr_dyadic();
        let num = n.to_f64() / 2f64.powi(e as i32);
        assert!((num - x.to_complex().norm_sqr()).abs() < 1e-9);
    }
}
