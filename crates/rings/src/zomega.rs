//! The cyclotomic ring `Z[ω]`, `ω = e^{iπ/4}`.

use crate::zroot2::ZRoot2;
use qmath::Complex64;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An element `a₀ + a₁ω + a₂ω² + a₃ω³` of `Z[ω]`, with `ω = e^{iπ/4}` and
/// `ω⁴ = −1`.
///
/// Useful identities: `ω² = i`, `√2 = ω − ω³`, `i√2 = ω + ω³`.
///
/// `Z[ω]` is norm-Euclidean; [`ZOmega::gcd`] implements the Euclidean
/// algorithm used when splitting rational primes for the Diophantine step
/// of `gridsynth`.
///
/// ```
/// use rings::ZOmega;
/// assert_eq!(ZOmega::sqrt2() * ZOmega::sqrt2(), ZOmega::from_int(2));
/// assert_eq!(ZOmega::i() * ZOmega::i(), ZOmega::from_int(-1));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ZOmega {
    /// Coefficient of `ω⁰ = 1`.
    pub a0: i128,
    /// Coefficient of `ω¹`.
    pub a1: i128,
    /// Coefficient of `ω² = i`.
    pub a2: i128,
    /// Coefficient of `ω³`.
    pub a3: i128,
}

impl ZOmega {
    /// Zero.
    pub const ZERO: ZOmega = ZOmega::new(0, 0, 0, 0);
    /// One.
    pub const ONE: ZOmega = ZOmega::new(1, 0, 0, 0);

    /// Creates `a₀ + a₁ω + a₂ω² + a₃ω³`.
    #[inline]
    pub const fn new(a0: i128, a1: i128, a2: i128, a3: i128) -> Self {
        ZOmega { a0, a1, a2, a3 }
    }

    /// Embeds a rational integer.
    #[inline]
    pub const fn from_int(n: i128) -> Self {
        ZOmega::new(n, 0, 0, 0)
    }

    /// The generator `ω`.
    #[inline]
    pub const fn omega() -> Self {
        ZOmega::new(0, 1, 0, 0)
    }

    /// The imaginary unit `i = ω²`.
    #[inline]
    pub const fn i() -> Self {
        ZOmega::new(0, 0, 1, 0)
    }

    /// `√2 = ω − ω³`.
    #[inline]
    pub const fn sqrt2() -> Self {
        ZOmega::new(0, 1, 0, -1)
    }

    /// `i√2 = ω + ω³`.
    #[inline]
    pub const fn i_sqrt2() -> Self {
        ZOmega::new(0, 1, 0, 1)
    }

    /// Embeds a `Z[√2]` element (`a + b√2 = a + b(ω − ω³)`).
    #[inline]
    pub const fn from_zroot2(x: ZRoot2) -> Self {
        ZOmega::new(x.a, x.b, 0, -x.b)
    }

    /// Complex conjugate `z† = a₀ − a₃ω − a₂ω² − a₁ω³`.
    #[inline]
    pub const fn conj(self) -> Self {
        ZOmega::new(self.a0, -self.a3, -self.a2, -self.a1)
    }

    /// √2-conjugate (Galois `σ₅: ω ↦ ω⁵ = −ω`, fixing `i`):
    /// negates the odd coefficients.
    #[inline]
    pub const fn conj2(self) -> Self {
        ZOmega::new(self.a0, -self.a1, self.a2, -self.a3)
    }

    /// Relative norm `z†·z ∈ Z[√2]` — the squared complex modulus as an
    /// exact element of `Z[√2]`.
    pub fn norm_zroot2(self) -> ZRoot2 {
        let p = self.conj() * self;
        debug_assert_eq!(p.a2, 0, "z†z must be real");
        debug_assert_eq!(p.a1, -p.a3, "z†z must lie in Z[√2]");
        ZRoot2::new(p.a0, p.a1)
    }

    /// Absolute field norm `N(z) = (z†z)·(z†z)• ∈ Z`, always ≥ 0.
    pub fn norm(self) -> i128 {
        self.norm_zroot2().norm()
    }

    /// `true` iff this is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.a0 == 0 && self.a1 == 0 && self.a2 == 0 && self.a3 == 0
    }

    /// `true` iff this is a unit of `Z[ω]` (absolute norm 1).
    pub fn is_unit(self) -> bool {
        self.norm() == 1
    }

    /// Numerical embedding into the complex plane.
    pub fn to_complex(self) -> Complex64 {
        const H: f64 = std::f64::consts::FRAC_1_SQRT_2;
        Complex64::new(
            self.a0 as f64 + (self.a1 as f64 - self.a3 as f64) * H,
            self.a2 as f64 + (self.a1 as f64 + self.a3 as f64) * H,
        )
    }

    /// Multiplication by `ω^k` (k may be any integer; `ω⁸ = 1`).
    pub fn mul_omega_pow(self, k: i32) -> ZOmega {
        let mut z = self;
        let k = k.rem_euclid(8);
        for _ in 0..k {
            // Multiply by ω: coefficients shift up, ω⁴ = −1 wraps with sign.
            z = ZOmega::new(-z.a3, z.a0, z.a1, z.a2);
        }
        z
    }

    /// `true` iff `√2` divides this element.
    pub fn divisible_by_sqrt2(self) -> bool {
        // z/√2 = z·√2/2; z·√2 has coefficients (a1−a3, a0+a2, a1+a3, a2−a0)
        // — all must be even.
        (self.a1 - self.a3) % 2 == 0
            && (self.a0 + self.a2) % 2 == 0
            && (self.a1 + self.a3) % 2 == 0
            && (self.a2 - self.a0) % 2 == 0
    }

    /// Exact division by `√2`. Returns `None` when not divisible.
    pub fn div_sqrt2(self) -> Option<ZOmega> {
        if !self.divisible_by_sqrt2() {
            return None;
        }
        let z = self * ZOmega::sqrt2();
        Some(ZOmega::new(z.a0 / 2, z.a1 / 2, z.a2 / 2, z.a3 / 2))
    }

    /// Euclidean division: `(q, r)` with `self = q·other + r` and
    /// `N(r) < N(other)`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(self, other: ZOmega) -> (ZOmega, ZOmega) {
        assert!(!other.is_zero(), "division by zero in Z[ω]");
        // self/other = self·other'/N(other) where other' is the product of
        // the three nontrivial conjugates of `other`.
        let c1 = other.conj();
        let c2 = other.conj2();
        let c3 = other.conj().conj2();
        let num = self * c1 * c2 * c3;
        let n = other.norm();
        let q = ZOmega::new(
            round_div(num.a0, n),
            round_div(num.a1, n),
            round_div(num.a2, n),
            round_div(num.a3, n),
        );
        let r = self - q * other;
        (q, r)
    }

    /// Greatest common divisor (up to units).
    pub fn gcd(self, other: ZOmega) -> ZOmega {
        let (mut x, mut y) = (self, other);
        let mut steps = 0;
        while !y.is_zero() {
            let (_, r) = x.div_rem(y);
            x = y;
            y = r;
            steps += 1;
            assert!(steps < 10_000, "gcd failed to converge");
        }
        x
    }

    /// Exact division. Returns `None` when `other` does not divide `self`.
    pub fn exact_div(self, other: ZOmega) -> Option<ZOmega> {
        let (q, r) = self.div_rem(other);
        if r.is_zero() {
            Some(q)
        } else {
            None
        }
    }

    /// Evaluates the ring homomorphism `Z[ω] → Z/p` sending `ω ↦ x`
    /// (requires `x⁴ ≡ −1 mod p`). Used for prime splitting.
    pub fn eval_mod(self, x: u128, p: u128) -> u128 {
        use crate::numtheory::{mulmod, powmod};
        let x2 = mulmod(x, x, p);
        let x3 = mulmod(x2, x, p);
        let _ = powmod(x, 4, p); // (debug aid; hom requires x⁴ = −1)
        let term = |c: i128, xp: u128| -> u128 {
            let cm = c.rem_euclid(p as i128) as u128;
            mulmod(cm, xp, p)
        };
        let mut acc = term(self.a0, 1);
        acc = (acc + term(self.a1, x)) % p;
        acc = (acc + term(self.a2, x2)) % p;
        acc = (acc + term(self.a3, x3)) % p;
        acc
    }
}

/// Rounds `a / b` to nearest (ties toward +∞), exactly.
fn round_div(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let (a, b) = if b < 0 { (-a, -b) } else { (a, b) };
    (2 * a + b).div_euclid(2 * b)
}

impl Add for ZOmega {
    type Output = ZOmega;
    #[inline]
    fn add(self, r: ZOmega) -> ZOmega {
        ZOmega::new(
            self.a0 + r.a0,
            self.a1 + r.a1,
            self.a2 + r.a2,
            self.a3 + r.a3,
        )
    }
}

impl Sub for ZOmega {
    type Output = ZOmega;
    #[inline]
    fn sub(self, r: ZOmega) -> ZOmega {
        ZOmega::new(
            self.a0 - r.a0,
            self.a1 - r.a1,
            self.a2 - r.a2,
            self.a3 - r.a3,
        )
    }
}

impl Mul for ZOmega {
    type Output = ZOmega;
    #[inline]
    fn mul(self, r: ZOmega) -> ZOmega {
        // (Σ aᵢωⁱ)(Σ bⱼωʲ) with ω⁴ = −1.
        let (a0, a1, a2, a3) = (self.a0, self.a1, self.a2, self.a3);
        let (b0, b1, b2, b3) = (r.a0, r.a1, r.a2, r.a3);
        ZOmega::new(
            a0 * b0 - a1 * b3 - a2 * b2 - a3 * b1,
            a0 * b1 + a1 * b0 - a2 * b3 - a3 * b2,
            a0 * b2 + a1 * b1 + a2 * b0 - a3 * b3,
            a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0,
        )
    }
}

impl Neg for ZOmega {
    type Output = ZOmega;
    #[inline]
    fn neg(self) -> ZOmega {
        ZOmega::new(-self.a0, -self.a1, -self.a2, -self.a3)
    }
}

impl fmt::Display for ZOmega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({} + {}ω + {}ω² + {}ω³)",
            self.a0, self.a1, self.a2, self.a3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(a0: i128, a1: i128, a2: i128, a3: i128) -> ZOmega {
        ZOmega::new(a0, a1, a2, a3)
    }

    #[test]
    fn omega_has_order_eight() {
        let mut w = ZOmega::ONE;
        for _ in 0..8 {
            w = w * ZOmega::omega();
        }
        assert_eq!(w, ZOmega::ONE);
        assert_eq!(
            ZOmega::omega().mul_omega_pow(3),
            ZOmega::new(0, 0, 0, 0) - ZOmega::ONE * ZOmega::from_int(1)
        );
    }

    #[test]
    fn sqrt2_squares_to_two() {
        assert_eq!(ZOmega::sqrt2() * ZOmega::sqrt2(), ZOmega::from_int(2));
        assert_eq!(
            ZOmega::i_sqrt2() * ZOmega::i_sqrt2(),
            ZOmega::from_int(-2)
        );
    }

    #[test]
    fn complex_embedding_is_homomorphism() {
        let x = z(3, -1, 2, 5);
        let y = z(-2, 4, 1, -3);
        let lhs = (x * y).to_complex();
        let rhs = x.to_complex() * y.to_complex();
        assert!(lhs.approx_eq(rhs, 1e-9));
        let lhs = (x + y).to_complex();
        let rhs = x.to_complex() + y.to_complex();
        assert!(lhs.approx_eq(rhs, 1e-9));
    }

    #[test]
    fn conj_matches_complex_conjugation() {
        let x = z(3, -1, 2, 5);
        assert!(x
            .conj()
            .to_complex()
            .approx_eq(x.to_complex().conj(), 1e-9));
    }

    #[test]
    fn conj2_negates_sqrt2() {
        let s = ZOmega::sqrt2();
        assert_eq!(s.conj2(), -s);
        // conj2 fixes i:
        assert_eq!(ZOmega::i().conj2(), ZOmega::i());
        // and is a ring homomorphism:
        let x = z(3, -1, 2, 5);
        let y = z(-2, 4, 1, -3);
        assert_eq!((x * y).conj2(), x.conj2() * y.conj2());
    }

    #[test]
    fn norm_zroot2_matches_modulus() {
        let x = z(3, -1, 2, 5);
        let n = x.norm_zroot2().to_f64();
        let m = x.to_complex().norm_sqr();
        assert!((n - m).abs() < 1e-9);
    }

    #[test]
    fn norm_is_multiplicative() {
        let x = z(3, -1, 2, 5);
        let y = z(-2, 4, 1, -3);
        assert_eq!((x * y).norm(), x.norm() * y.norm());
        assert!(x.norm() >= 0);
    }

    #[test]
    fn div_rem_is_euclidean() {
        let cases = [
            (z(17, 5, -3, 2), z(3, 1, 0, -1)),
            (z(-23, 11, 7, -5), z(2, -3, 1, 0)),
            (z(100, -41, 13, 9), z(1, 1, 1, 1)),
        ];
        for (x, y) in cases {
            let (q, r) = x.div_rem(y);
            assert_eq!(q * y + r, x);
            assert!(r.norm() < y.norm(), "remainder norm too large");
        }
    }

    #[test]
    fn gcd_of_multiples() {
        let g0 = z(2, 1, 0, -1);
        let x = g0 * z(5, -2, 3, 1);
        let y = g0 * z(-1, 7, 2, 2);
        let g = x.gcd(y);
        assert!(x.exact_div(g).is_some());
        assert!(y.exact_div(g).is_some());
        assert!(g.exact_div(g0).is_some(), "gcd must contain g0");
    }

    #[test]
    fn div_sqrt2_roundtrip() {
        let x = z(3, -1, 2, 5) * ZOmega::sqrt2();
        let y = x.div_sqrt2().expect("divisible");
        assert_eq!(y * ZOmega::sqrt2(), x);
        assert_eq!(z(1, 0, 0, 0).div_sqrt2(), None);
    }

    #[test]
    fn from_zroot2_embedding() {
        let x = ZRoot2::new(3, -2);
        let e = ZOmega::from_zroot2(x);
        assert!((e.to_complex().re - x.to_f64()).abs() < 1e-9);
        assert!(e.to_complex().im.abs() < 1e-12);
        // Embedding respects multiplication.
        let y = ZRoot2::new(-1, 4);
        assert_eq!(
            ZOmega::from_zroot2(x * y),
            ZOmega::from_zroot2(x) * ZOmega::from_zroot2(y)
        );
    }

    #[test]
    fn eval_mod_is_homomorphism() {
        use crate::numtheory::{mulmod, root8};
        let p = 97u128; // 97 = 1 mod 8
        let x = root8(p).unwrap();
        let a = z(3, -1, 2, 5);
        let b = z(-2, 4, 1, -3);
        let lhs = (a * b).eval_mod(x, p);
        let rhs = mulmod(a.eval_mod(x, p), b.eval_mod(x, p), p);
        assert_eq!(lhs, rhs);
    }
}
