//! The real quadratic ring `Z[√2]`.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An element `a + b√2` of `Z[√2]`.
///
/// `Z[√2]` is norm-Euclidean, so gcds exist and are computed by repeated
/// division-with-remainder. The Galois conjugate (`√2 ↦ −√2`) is written
/// [`ZRoot2::conj2`] and the field norm is `N(x) = x·x• = a² − 2b²`.
///
/// ```
/// use rings::ZRoot2;
/// let lambda = ZRoot2::new(1, 1); // the fundamental unit 1 + √2
/// assert_eq!(lambda.norm(), -1);
/// assert_eq!((lambda * lambda).norm(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZRoot2 {
    /// Rational part.
    pub a: i128,
    /// Coefficient of √2.
    pub b: i128,
}

impl ZRoot2 {
    /// Zero.
    pub const ZERO: ZRoot2 = ZRoot2 { a: 0, b: 0 };
    /// One.
    pub const ONE: ZRoot2 = ZRoot2 { a: 1, b: 0 };
    /// √2.
    pub const SQRT2: ZRoot2 = ZRoot2 { a: 0, b: 1 };
    /// The fundamental unit `λ = 1 + √2` (norm −1).
    pub const LAMBDA: ZRoot2 = ZRoot2 { a: 1, b: 1 };
    /// `λ⁻¹ = −1 + √2` (note `λ·λ⁻¹ = 1` since `λ(√2−1) = 1`).
    pub const LAMBDA_INV: ZRoot2 = ZRoot2 { a: -1, b: 1 };

    /// Creates `a + b√2`.
    #[inline]
    pub const fn new(a: i128, b: i128) -> Self {
        ZRoot2 { a, b }
    }

    /// Embeds a rational integer.
    #[inline]
    pub const fn from_int(n: i128) -> Self {
        ZRoot2 { a: n, b: 0 }
    }

    /// Galois conjugate `a − b√2` (the paper's `•` operation).
    #[inline]
    pub const fn conj2(self) -> Self {
        ZRoot2 {
            a: self.a,
            b: -self.b,
        }
    }

    /// Field norm `N(x) = x·x• = a² − 2b² ∈ Z`.
    #[inline]
    pub const fn norm(self) -> i128 {
        self.a * self.a - 2 * self.b * self.b
    }

    /// Numerical value as `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.a as f64 + self.b as f64 * std::f64::consts::SQRT_2
    }

    /// `true` iff this is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.a == 0 && self.b == 0
    }

    /// `true` iff this is a unit (norm ±1).
    #[inline]
    pub const fn is_unit(self) -> bool {
        let n = self.norm();
        n == 1 || n == -1
    }

    /// Exact sign of the real value `a + b√2` without floating point.
    pub fn signum(self) -> i32 {
        match (self.a.signum(), self.b.signum()) {
            (0, 0) => 0,
            (sa, 0) => sa as i32,
            (0, sb) => sb as i32,
            (1, 1) => 1,
            (-1, -1) => -1,
            (sa, _) => {
                // a and b have opposite signs: compare a² with 2b².
                // Checked arithmetic falls back to floating point for
                // coordinates beyond ~2^62 (where the ±1 ULP of f64 cannot
                // flip the sign of |a| − √2|b| at opposite signs of this
                // magnitude unless they are astronomically close, which
                // √2's irrationality measure rules out for integers).
                let exact = self
                    .a
                    .checked_mul(self.a)
                    .zip(self.b.checked_mul(self.b).and_then(|b2| b2.checked_mul(2)));
                let cmp = match exact {
                    Some((a2, b2)) => a2.cmp(&b2),
                    None => {
                        let fa = (self.a as f64).abs();
                        let fb = (self.b as f64).abs() * std::f64::consts::SQRT_2;
                        fa.partial_cmp(&fb).expect("finite floats")
                    }
                };
                match cmp {
                    std::cmp::Ordering::Greater => sa as i32,
                    std::cmp::Ordering::Less => -(sa as i32),
                    std::cmp::Ordering::Equal => 0, // impossible: √2 irrational
                }
            }
        }
    }

    /// `true` iff both `self ≥ 0` and `self• ≥ 0` ("doubly positive").
    pub fn is_doubly_nonneg(self) -> bool {
        self.signum() >= 0 && self.conj2().signum() >= 0
    }

    /// Euclidean division: returns `(q, r)` with `self = q·other + r` and
    /// `|N(r)| < |N(other)|`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(self, other: ZRoot2) -> (ZRoot2, ZRoot2) {
        assert!(!other.is_zero(), "division by zero in Z[√2]");
        // self/other = self·other• / N(other) as exact rationals.
        let n = other.norm();
        let num = self * other.conj2();
        let q = ZRoot2::new(round_div(num.a, n), round_div(num.b, n));
        let r = self - q * other;
        (q, r)
    }

    /// Greatest common divisor (up to units).
    pub fn gcd(self, other: ZRoot2) -> ZRoot2 {
        let (mut x, mut y) = (self, other);
        while !y.is_zero() {
            let (_, r) = x.div_rem(y);
            x = y;
            y = r;
        }
        x
    }

    /// Exact division. Returns `None` when `other` does not divide `self`.
    pub fn exact_div(self, other: ZRoot2) -> Option<ZRoot2> {
        let (q, r) = self.div_rem(other);
        if r.is_zero() {
            Some(q)
        } else {
            None
        }
    }

    /// Writes a unit as `±λ^n`: returns `(sign, n)` with
    /// `self = sign · λ^n`, or `None` if `self` is not a unit.
    pub fn unit_decompose(self) -> Option<(i32, i64)> {
        if !self.is_unit() {
            return None;
        }
        let mut u = self;
        let mut n: i64 = 0;
        // λ = 1+√2 ≈ 2.414. Scale u into [1, λ) by multiplying/dividing.
        loop {
            let v = u.to_f64().abs();
            if v >= 2.4142135623730945 {
                u = u * ZRoot2::LAMBDA_INV;
                n += 1;
            } else if v < 0.9999999 {
                u = u * ZRoot2::LAMBDA;
                n -= 1;
            } else {
                break;
            }
            if n.abs() > 300 {
                return None; // numerically degenerate; not expected
            }
        }
        if u == ZRoot2::ONE {
            Some((1, n))
        } else if u == -ZRoot2::ONE {
            Some((-1, n))
        } else {
            None
        }
    }

    /// `λ^n` for possibly negative `n`.
    pub fn lambda_pow(n: i64) -> ZRoot2 {
        let base = if n >= 0 {
            ZRoot2::LAMBDA
        } else {
            ZRoot2::LAMBDA_INV
        };
        let mut acc = ZRoot2::ONE;
        for _ in 0..n.unsigned_abs() {
            acc = acc * base;
        }
        acc
    }
}

/// Rounds `a / b` to the nearest integer (ties toward +∞), exactly.
fn round_div(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let (a, b) = if b < 0 { (-a, -b) } else { (a, b) };
    // floor((2a + b) / (2b))
    let num = 2 * a + b;
    let den = 2 * b;
    num.div_euclid(den)
}

impl Add for ZRoot2 {
    type Output = ZRoot2;
    #[inline]
    fn add(self, r: ZRoot2) -> ZRoot2 {
        ZRoot2::new(self.a + r.a, self.b + r.b)
    }
}

impl Sub for ZRoot2 {
    type Output = ZRoot2;
    #[inline]
    fn sub(self, r: ZRoot2) -> ZRoot2 {
        ZRoot2::new(self.a - r.a, self.b - r.b)
    }
}

impl Mul for ZRoot2 {
    type Output = ZRoot2;
    #[inline]
    fn mul(self, r: ZRoot2) -> ZRoot2 {
        ZRoot2::new(
            self.a * r.a + 2 * self.b * r.b,
            self.a * r.b + self.b * r.a,
        )
    }
}

impl Neg for ZRoot2 {
    type Output = ZRoot2;
    #[inline]
    fn neg(self) -> ZRoot2 {
        ZRoot2::new(-self.a, -self.b)
    }
}

impl fmt::Display for ZRoot2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}√2", self.a, if self.b < 0 { "" } else { "+" }, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_axioms_spot() {
        let x = ZRoot2::new(3, -2);
        let y = ZRoot2::new(-1, 4);
        let z = ZRoot2::new(7, 5);
        assert_eq!((x + y) * z, x * z + y * z);
        assert_eq!(x * y, y * x);
        assert_eq!((x * y) * z, x * (y * z));
    }

    #[test]
    fn norm_is_multiplicative() {
        let x = ZRoot2::new(3, -2);
        let y = ZRoot2::new(-1, 4);
        assert_eq!((x * y).norm(), x.norm() * y.norm());
    }

    #[test]
    fn conj_is_homomorphism() {
        let x = ZRoot2::new(3, -2);
        let y = ZRoot2::new(-1, 4);
        assert_eq!((x * y).conj2(), x.conj2() * y.conj2());
        assert_eq!((x + y).conj2(), x.conj2() + y.conj2());
    }

    #[test]
    fn lambda_inverse() {
        assert_eq!(ZRoot2::LAMBDA * ZRoot2::LAMBDA_INV, ZRoot2::ONE);
    }

    #[test]
    fn signum_exact() {
        assert_eq!(ZRoot2::new(3, -2).signum(), 1); // 3 - 2.83 > 0
        assert_eq!(ZRoot2::new(1, -1).signum(), -1); // 1 - 1.41 < 0
        assert_eq!(ZRoot2::new(-3, 2).signum(), -1);
        assert_eq!(ZRoot2::ZERO.signum(), 0);
        assert_eq!(ZRoot2::new(0, 5).signum(), 1);
        assert_eq!(ZRoot2::new(7, 0).signum(), 1);
    }

    #[test]
    fn div_rem_is_euclidean() {
        let cases = [
            (ZRoot2::new(17, 5), ZRoot2::new(3, 1)),
            (ZRoot2::new(-23, 11), ZRoot2::new(2, -3)),
            (ZRoot2::new(100, -41), ZRoot2::new(1, 1)),
            (ZRoot2::new(5, 0), ZRoot2::new(0, 1)),
        ];
        for (x, y) in cases {
            let (q, r) = x.div_rem(y);
            assert_eq!(q * y + r, x);
            assert!(
                r.norm().abs() < y.norm().abs(),
                "remainder too large: {x} / {y} -> r={r}"
            );
        }
    }

    #[test]
    fn gcd_divides_both() {
        let g0 = ZRoot2::new(3, 1);
        let x = g0 * ZRoot2::new(5, -2);
        let y = g0 * ZRoot2::new(-1, 7);
        let g = x.gcd(y);
        assert!(x.exact_div(g).is_some());
        assert!(y.exact_div(g).is_some());
        // g must be divisible by g0 (up to units).
        assert!(g.exact_div(g0).is_some());
    }

    #[test]
    fn unit_decompose_roundtrip() {
        for n in -6i64..=6 {
            for sign in [1i32, -1] {
                let u = if sign == 1 {
                    ZRoot2::lambda_pow(n)
                } else {
                    -ZRoot2::lambda_pow(n)
                };
                let (s, m) = u.unit_decompose().expect("unit");
                assert_eq!((s, m), (sign, n));
            }
        }
        assert_eq!(ZRoot2::new(3, 1).unit_decompose(), None);
    }

    #[test]
    fn doubly_positive() {
        assert!(ZRoot2::new(3, 1).is_doubly_nonneg()); // 3±√2 > 0
        assert!(!ZRoot2::new(1, 1).is_doubly_nonneg()); // 1-√2 < 0
        assert!(ZRoot2::ZERO.is_doubly_nonneg());
    }

    #[test]
    fn round_div_behaviour() {
        assert_eq!(round_div(7, 2), 4); // 3.5 -> 4 (ties up)
        assert_eq!(round_div(-7, 2), -3); // -3.5 -> -3 (ties up)
        assert_eq!(round_div(6, 3), 2);
        assert_eq!(round_div(-6, 3), -2);
        assert_eq!(round_div(5, -2), -2); // -2.5 -> -2
    }
}
