//! Exact ring arithmetic and elementary number theory.
//!
//! The Ross–Selinger `gridsynth` algorithm works in the ring of integers of
//! the eighth cyclotomic field `Q(ω)`, `ω = e^{iπ/4}`, and its real subring
//! `Z[√2]`. This crate provides:
//!
//! * [`ZRoot2`] — `a + b√2` with `a, b : i128`, conjugation, the field
//!   norm, and a Euclidean gcd;
//! * [`ZOmega`] — `a₀ + a₁ω + a₂ω² + a₃ω³`, complex and √2-conjugation,
//!   relative/absolute norms, and a Euclidean gcd;
//! * [`DOmega`] — elements of `Z[ω]/√2^k` (dyadic denominators), the entry
//!   type of exactly-synthesizable unitaries;
//! * [`numtheory`] — Miller–Rabin, Pollard rho, Tonelli–Shanks and friends
//!   on `u128`.
//!
//! # Coordinate ranges
//!
//! All arithmetic uses `i128`. The synthesis pipeline keeps denominator
//! exponents `k ≲ 50` (synthesis errors down to ~1e-7), so coordinates stay
//! below `2^60` and all products fit comfortably.
//!
//! ```
//! use rings::{ZOmega, ZRoot2};
//! let sqrt2 = ZOmega::sqrt2();
//! assert_eq!(sqrt2 * sqrt2, ZOmega::from_int(2));
//! assert_eq!(ZRoot2::new(1, 1).norm(), -1); // 1+√2 is a unit
//! ```

pub mod domega;
pub mod numtheory;
pub mod zomega;
pub mod zroot2;

pub use domega::DOmega;
pub use zomega::ZOmega;
pub use zroot2::ZRoot2;
