//! Elementary number theory on `u128`.
//!
//! These routines back the Diophantine solver of `gridsynth`: factoring the
//! absolute norm `N(ξ)` and extracting square roots modulo primes.

/// Modular multiplication `a·b mod m` that never overflows, for any
/// `m < 2^127` (Russian-peasant fallback above the fast range).
pub fn mulmod(a: u128, b: u128, m: u128) -> u128 {
    debug_assert!(m > 0);
    let (a, b) = (a % m, b % m);
    if m <= u64::MAX as u128 {
        // a, b < 2^64 so the product fits in u128.
        return (a * b) % m;
    }
    // Shift-and-add.
    let mut result = 0u128;
    let mut x = a;
    let mut y = b;
    while y > 0 {
        if y & 1 == 1 {
            result = addmod(result, x, m);
        }
        x = addmod(x, x, m);
        y >>= 1;
    }
    result
}

#[inline]
fn addmod(a: u128, b: u128, m: u128) -> u128 {
    let s = a.wrapping_add(b);
    if s < a || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// Modular exponentiation `a^e mod m`.
pub fn powmod(a: u128, mut e: u128, m: u128) -> u128 {
    if m == 1 {
        return 0;
    }
    let mut base = a % m;
    let mut acc = 1u128;
    while e > 0 {
        if e & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        e >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test, valid for all `n < 2^128`
/// with an extended base set (probabilistically safe above 3.3·10²⁴,
/// deterministic below).
pub fn is_prime(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        r += 1;
    }
    'witness: for a in [
        2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    ] {
        if a % n == 0 {
            // A witness that is a multiple of n says nothing (and 0^d = 0
            // would falsely report "composite" for n ∈ {41, 43, 47}).
            continue;
        }
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Pollard's rho with Brent's cycle detection. Returns a non-trivial factor
/// of composite `n`, or `None` if the (bounded) search fails.
pub fn pollard_rho(n: u128, seed: u128) -> Option<u128> {
    if n.is_multiple_of(2) {
        return Some(2);
    }
    let c = 1 + seed % (n - 1);
    let f = |x: u128| addmod(mulmod(x, x, n), c, n);
    let mut x = 2u128;
    let mut y = 2u128;
    let mut d = 1u128;
    let mut iters = 0u64;
    while d == 1 {
        x = f(x);
        y = f(f(y));
        d = gcd_u128(x.abs_diff(y), n);
        iters += 1;
        if iters > 2_000_000 {
            // Factors up to ~10^12 are found in ≤ n^(1/4) ≈ 10^3.5 steps;
            // anything that survives 2M steps is beyond the norm sizes the
            // synthesis pipeline produces, so fail soft.
            return None;
        }
    }
    if d != n {
        Some(d)
    } else {
        None
    }
}

/// Greatest common divisor on `u128`.
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Full factorization of `n` as `(prime, exponent)` pairs, prime ascending.
///
/// Returns `None` if a composite cofactor resists Pollard rho (never
/// observed for the norm sizes this workspace produces, but callers treat
/// synthesis candidates as skippable, so we fail soft).
pub fn factor(n: u128) -> Option<Vec<(u128, u32)>> {
    let mut out: Vec<(u128, u32)> = Vec::new();
    let mut stack = vec![n];
    while let Some(mut m) = stack.pop() {
        if m == 1 {
            continue;
        }
        // Strip small primes first.
        for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
            while m % p == 0 {
                push_factor(&mut out, p);
                m /= p;
            }
        }
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            push_factor(&mut out, m);
            continue;
        }
        let mut found = None;
        for seed in 1..20u128 {
            if let Some(d) = pollard_rho(m, seed) {
                if d != 1 && d != m {
                    found = Some(d);
                    break;
                }
            }
        }
        let d = found?;
        stack.push(d);
        stack.push(m / d);
    }
    out.sort_by_key(|&(p, _)| p);
    // Merge duplicates created by independent stack entries.
    let mut merged: Vec<(u128, u32)> = Vec::new();
    for (p, e) in out {
        if let Some(last) = merged.last_mut() {
            if last.0 == p {
                last.1 += e;
                continue;
            }
        }
        merged.push((p, e));
    }
    Some(merged)
}

fn push_factor(out: &mut Vec<(u128, u32)>, p: u128) {
    if let Some(f) = out.iter_mut().find(|f| f.0 == p) {
        f.1 += 1;
    } else {
        out.push((p, 1));
    }
}

/// Tonelli–Shanks: a square root of `a` modulo odd prime `p`, or `None`
/// when `a` is a non-residue.
pub fn sqrt_mod(a: u128, p: u128) -> Option<u128> {
    let a = a % p;
    if a == 0 {
        return Some(0);
    }
    if p == 2 {
        return Some(a);
    }
    if powmod(a, (p - 1) / 2, p) != 1 {
        return None;
    }
    if p % 4 == 3 {
        return Some(powmod(a, (p + 1) / 4, p));
    }
    // Write p-1 = q·2^s.
    let mut q = p - 1;
    let mut s = 0u32;
    while q & 1 == 0 {
        q >>= 1;
        s += 1;
    }
    // Find a non-residue z.
    let mut z = 2u128;
    while powmod(z, (p - 1) / 2, p) != p - 1 {
        z += 1;
    }
    let mut m = s;
    let mut c = powmod(z, q, p);
    let mut t = powmod(a, q, p);
    let mut r = powmod(a, q.div_ceil(2), p);
    while t != 1 {
        // Find least i with t^(2^i) = 1.
        let mut i = 0u32;
        let mut t2 = t;
        while t2 != 1 {
            t2 = mulmod(t2, t2, p);
            i += 1;
            if i == m {
                return None; // should not happen for residues
            }
        }
        let b = powmod(c, 1u128 << (m - i - 1), p);
        m = i;
        c = mulmod(b, b, p);
        t = mulmod(t, c, p);
        r = mulmod(r, b, p);
    }
    Some(r)
}

/// For `p ≡ 1 (mod 8)`: an element `x` with `x⁴ ≡ −1 (mod p)` (a primitive
/// 8th root of unity). Deterministic scan over small bases.
pub fn root8(p: u128) -> Option<u128> {
    if p % 8 != 1 {
        return None;
    }
    let e = (p - 1) / 8;
    let mut a = 2u128;
    loop {
        let x = powmod(a, e, p);
        let x4 = mulmod(mulmod(x, x, p), mulmod(x, x, p), p);
        if x4 == p - 1 {
            return Some(x);
        }
        a += 1;
        if a > 1000 {
            return None; // p is almost certainly not prime
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_detected() {
        for p in [2u128, 3, 17, 97, 7919, 1_000_000_007, 2_147_483_647] {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in [1u128, 4, 91, 561, 1_000_000_008, 25_326_001] {
            assert!(!is_prime(c), "{c} should be composite");
        }
        // Regression: primes that coincide with Miller-Rabin witnesses.
        for p in [41u128, 43, 47, 37] {
            assert!(is_prime(p), "{p} is prime despite being a witness base");
        }
    }

    #[test]
    fn factor_semiprimes_of_witness_primes() {
        // Regression: 24313 = 41 × 593 once failed because is_prime(41)
        // was wrong.
        assert_eq!(
            factor(24313),
            Some(vec![(41, 1), (593, 1)])
        );
        assert_eq!(factor(41 * 43), Some(vec![(41, 1), (43, 1)]));
    }

    #[test]
    fn factor_roundtrips() {
        for n in [
            2u128 * 3 * 3 * 17,
            1_000_003u128 * 999_983,
            2u128.pow(20) * 7919,
            1u128,
            97u128,
        ] {
            let fs = factor(n).expect("factorable");
            let back: u128 = fs
                .iter()
                .map(|&(p, e)| p.pow(e))
                .product();
            assert_eq!(back, n);
            for &(p, _) in &fs {
                assert!(is_prime(p));
            }
        }
    }

    #[test]
    fn sqrt_mod_works() {
        for p in [13u128, 17, 97, 1_000_000_007] {
            for a in 1..30u128 {
                let sq = mulmod(a, a, p);
                let r = sqrt_mod(sq, p).expect("residue has root");
                assert_eq!(mulmod(r, r, p), sq, "p={p}, a={a}");
            }
        }
    }

    #[test]
    fn sqrt_mod_rejects_nonresidue() {
        // 3 is a non-residue mod 7 (residues: 1,2,4).
        assert_eq!(sqrt_mod(3, 7), None);
    }

    #[test]
    fn root8_has_order_8() {
        for p in [17u128, 41, 97, 113, 257] {
            let x = root8(p).expect("p = 1 mod 8");
            assert_eq!(powmod(x, 4, p), p - 1);
            assert_eq!(powmod(x, 8, p), 1);
        }
        assert_eq!(root8(7), None);
    }

    #[test]
    fn mulmod_large_values() {
        let m = (1u128 << 100) + 7;
        let a = (1u128 << 99) + 123;
        let b = (1u128 << 98) + 456;
        // Compare against a slow double-and-add reference.
        let mut want = 0u128;
        for i in (0..128).rev() {
            want = addmod(want, want, m);
            if (b >> i) & 1 == 1 {
                want = addmod(want, a % m, m);
            }
        }
        assert_eq!(mulmod(a, b, m), want);
    }

    #[test]
    fn powmod_fermat() {
        let p = 1_000_000_007u128;
        for a in [2u128, 3, 12345] {
            assert_eq!(powmod(a, p - 1, p), 1);
        }
    }
}
