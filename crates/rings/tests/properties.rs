//! Property-based tests for the exact rings.

use proptest::prelude::*;
use rings::numtheory::{gcd_u128, is_prime, mulmod, powmod};
use rings::{DOmega, ZOmega, ZRoot2};

fn arb_zroot2() -> impl Strategy<Value = ZRoot2> {
    (-1_000_000i128..1_000_000, -1_000_000i128..1_000_000)
        .prop_map(|(a, b)| ZRoot2::new(a, b))
}

fn arb_zomega() -> impl Strategy<Value = ZOmega> {
    (
        -10_000i128..10_000,
        -10_000i128..10_000,
        -10_000i128..10_000,
        -10_000i128..10_000,
    )
        .prop_map(|(a, b, c, d)| ZOmega::new(a, b, c, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn zroot2_ring_axioms(x in arb_zroot2(), y in arb_zroot2(), z in arb_zroot2()) {
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * (y + z), x * y + x * z);
        prop_assert_eq!(x + (-x), ZRoot2::ZERO);
    }

    #[test]
    fn zroot2_norm_and_conj(x in arb_zroot2(), y in arb_zroot2()) {
        prop_assert_eq!((x * y).norm(), x.norm() * y.norm());
        prop_assert_eq!((x * y).conj2(), x.conj2() * y.conj2());
        prop_assert_eq!(x.conj2().conj2(), x);
        // x · x• equals the norm as a rational integer.
        prop_assert_eq!(x * x.conj2(), ZRoot2::from_int(x.norm()));
    }

    #[test]
    fn zroot2_signum_matches_float(x in arb_zroot2()) {
        let f = x.to_f64();
        if f.abs() > 1e-3 {
            prop_assert_eq!(x.signum(), f.signum() as i32);
        }
    }

    #[test]
    fn zroot2_division_is_euclidean(x in arb_zroot2(), y in arb_zroot2()) {
        prop_assume!(!y.is_zero());
        let (q, r) = x.div_rem(y);
        prop_assert_eq!(q * y + r, x);
        prop_assert!(r.norm().abs() < y.norm().abs());
    }

    #[test]
    fn zomega_conj_laws(x in arb_zomega(), y in arb_zomega()) {
        prop_assert_eq!((x * y).conj(), x.conj() * y.conj());
        prop_assert_eq!((x * y).conj2(), x.conj2() * y.conj2());
        prop_assert_eq!(x.conj().conj(), x);
        // conj and conj2 commute.
        prop_assert_eq!(x.conj().conj2(), x.conj2().conj());
    }

    #[test]
    fn zomega_norm_nonneg_multiplicative(x in arb_zomega(), y in arb_zomega()) {
        prop_assert!(x.norm() >= 0);
        prop_assert_eq!((x * y).norm(), x.norm() * y.norm());
    }

    #[test]
    fn zomega_sqrt2_multiplication_roundtrip(x in arb_zomega()) {
        let y = x * ZOmega::sqrt2();
        prop_assert_eq!(y.div_sqrt2(), Some(x));
    }

    #[test]
    fn zomega_gcd_divides(x in arb_zomega(), y in arb_zomega()) {
        prop_assume!(!x.is_zero() && !y.is_zero());
        let g = x.gcd(y);
        prop_assert!(x.exact_div(g).is_some());
        prop_assert!(y.exact_div(g).is_some());
    }

    #[test]
    fn domega_field_ops_match_complex(
        x in arb_zomega(), kx in 0u32..6,
        y in arb_zomega(), ky in 0u32..6,
    ) {
        let a = DOmega::new(x, kx);
        let b = DOmega::new(y, ky);
        let sum = (a + b).to_complex();
        let prod = (a * b).to_complex();
        prop_assert!(sum.approx_eq(a.to_complex() + b.to_complex(), 1e-6));
        prop_assert!(prod.approx_eq(a.to_complex() * b.to_complex(), 1e-4));
    }

    #[test]
    fn powmod_matches_naive(a in 1u128..1000, e in 0u128..64, m in 2u128..10_000) {
        let mut want = 1u128;
        for _ in 0..e {
            want = (want * (a % m)) % m;
        }
        prop_assert_eq!(powmod(a, e, m), want);
    }

    #[test]
    fn mulmod_matches_widening(a in 0u128..u64::MAX as u128, b in 0u128..u64::MAX as u128, m in 1u128..u64::MAX as u128) {
        prop_assert_eq!(mulmod(a, b, m), (a % m) * (b % m) % m);
    }

    #[test]
    fn gcd_properties(a in 1u128..1_000_000, b in 1u128..1_000_000) {
        let g = gcd_u128(a, b);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
    }

    #[test]
    fn fermat_for_random_primes(seed in 2u128..50_000) {
        // Find the next prime above `seed` by scanning; then Fermat holds.
        let mut p = seed | 1;
        while !is_prime(p) {
            p += 2;
        }
        prop_assert_eq!(powmod(2, p - 1, p), 1 % p);
    }
}
