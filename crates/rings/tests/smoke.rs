//! Crate-level smoke test: one algebraic identity, so a `rings` regression
//! fails fast without the property-test battery.

use rings::{ZOmega, ZRoot2};

#[test]
fn zomega_norm_is_multiplicative() {
    let x = ZOmega::new(3, -2, 5, 1);
    let y = ZOmega::new(-4, 7, 0, 2);
    assert_eq!((x * y).norm(), x.norm() * y.norm());
    // ω has absolute norm 1 (it is a unit).
    assert_eq!(ZOmega::new(0, 1, 0, 0).norm(), 1);
    // √2 has absolute norm 4 = N(2)^... the defining quadratic: √2·√2 = 2.
    assert_eq!(ZOmega::sqrt2() * ZOmega::sqrt2(), ZOmega::from_int(2));
}

#[test]
fn zroot2_fundamental_unit() {
    // 1 + √2 is the fundamental unit of Z[√2]: norm −1, and its inverse is
    // −(1 − √2).
    let u = ZRoot2::new(1, 1);
    assert_eq!(u.norm(), -1);
    let inv = ZRoot2::new(-1, 1); // −1 + √2
    assert_eq!(u * inv, ZRoot2::from_int(1));
}
