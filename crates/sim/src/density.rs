//! Exact density-matrix simulation with depolarizing noise.

use crate::noise::NoiseModel;
use crate::statevector::State;
use circuit::{Circuit, Op};
use qmath::{Complex64, Mat2};

/// A density matrix of `n ≤ 10` qubits (2^2n complex entries).
///
/// Qubit indexing matches [`State`]: qubit 0 is the most significant bit.
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    /// Row-major `dim × dim` matrix.
    rho: Vec<Complex64>,
}

impl DensityMatrix {
    /// `|0…0⟩⟨0…0|`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 10, "density matrix limited to 10 qubits");
        let dim = 1usize << n;
        let mut rho = vec![Complex64::ZERO; dim * dim];
        rho[0] = Complex64::ONE;
        DensityMatrix { n, dim, rho }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Trace (should stay 1 under CPTP evolution).
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|i| self.rho[i * self.dim + i]).sum()
    }

    /// Applies `ρ ← UρU†` for a single-qubit unitary on `q`.
    pub fn apply_1q(&mut self, q: usize, m: &Mat2) {
        let stride = 1usize << (self.n - 1 - q);
        let dim = self.dim;
        // Left multiply U on rows.
        for col in 0..dim {
            let mut base = 0usize;
            while base < dim {
                for off in base..base + stride {
                    let i0 = off * dim + col;
                    let i1 = (off + stride) * dim + col;
                    let a0 = self.rho[i0];
                    let a1 = self.rho[i1];
                    self.rho[i0] = m.e[0] * a0 + m.e[1] * a1;
                    self.rho[i1] = m.e[2] * a0 + m.e[3] * a1;
                }
                base += stride * 2;
            }
        }
        // Right multiply U† on columns.
        let md = m.adjoint();
        for row in 0..dim {
            let rbase = row * dim;
            let mut base = 0usize;
            while base < dim {
                for off in base..base + stride {
                    let i0 = rbase + off;
                    let i1 = rbase + off + stride;
                    let a0 = self.rho[i0];
                    let a1 = self.rho[i1];
                    // (ρ·U†): columns transform with U† from the right:
                    // new[i0] = a0·U†[0][0] + a1·U†[1][0], etc.
                    self.rho[i0] = a0 * md.e[0] + a1 * md.e[2];
                    self.rho[i1] = a0 * md.e[1] + a1 * md.e[3];
                }
                base += stride * 2;
            }
        }
    }

    /// Applies a CNOT (`c` control, `t` target) unitarily.
    pub fn apply_cx(&mut self, c: usize, t: usize) {
        let cb = 1usize << (self.n - 1 - c);
        let tb = 1usize << (self.n - 1 - t);
        let dim = self.dim;
        let map = |i: usize| if i & cb != 0 { i ^ tb } else { i };
        let mut out = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            let mr = map(r);
            for cidx in 0..dim {
                out[mr * dim + map(cidx)] = self.rho[r * dim + cidx];
            }
        }
        self.rho = out;
    }

    /// Applies single-qubit depolarizing noise with rate `λ` on `q`:
    /// `ρ ← (1−3λ/4)ρ + (λ/4)(XρX + YρY + ZρZ)`.
    pub fn depolarize(&mut self, q: usize, lambda: f64) {
        if lambda == 0.0 {
            return;
        }
        let mut acc: Vec<Complex64> = self
            .rho
            .iter()
            .map(|z| z.scale(1.0 - 0.75 * lambda))
            .collect();
        for p in [Mat2::x(), Mat2::y(), Mat2::z()] {
            let mut tmp = self.clone();
            tmp.apply_1q(q, &p);
            for (a, b) in acc.iter_mut().zip(tmp.rho.iter()) {
                *a += b.scale(lambda / 4.0);
            }
        }
        self.rho = acc;
    }

    /// Runs a discrete circuit under a noise model: each noisy gate is
    /// followed by a depolarizing fault on its qubit.
    pub fn apply_noisy_circuit(&mut self, c: &Circuit, model: &NoiseModel) {
        assert_eq!(c.n_qubits(), self.n);
        for i in c.instrs() {
            match i.op {
                Op::Cx => self.apply_cx(i.q0, i.q1.expect("cx target")),
                Op::Gate1(g) => {
                    self.apply_1q(i.q0, &g.matrix());
                    if model.is_noisy(g) {
                        self.depolarize(i.q0, model.rate);
                    }
                }
                op => self.apply_1q(i.q0, &op.matrix()),
            }
        }
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` against a pure state.
    pub fn fidelity_with_pure(&self, psi: &State) -> f64 {
        assert_eq!(psi.n_qubits(), self.n);
        let a = psi.amplitudes();
        let mut acc = Complex64::ZERO;
        for r in 0..self.dim {
            let mut row = Complex64::ZERO;
            for (c, amp) in a.iter().enumerate() {
                row += self.rho[r * self.dim + c] * *amp;
            }
            acc += a[r].conj() * row;
        }
        acc.re.clamp(0.0, 1.0 + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseTarget;
    use gates::Gate;

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.u3(2, 0.4, 0.9, -0.3);
        c.cx(1, 2);
        let mut rho = DensityMatrix::zero(3);
        rho.apply_noisy_circuit(
            &c,
            &NoiseModel {
                rate: 0.0,
                target: NoiseTarget::NonPauliGates,
            },
        );
        let mut psi = State::zero(3);
        psi.apply_circuit(&c);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarize_reduces_fidelity_predictably() {
        // |0⟩ under depolarizing λ: F = ⟨0|E(|0⟩⟨0|)|0⟩ = 1 − λ/2.
        let lam = 0.2;
        let mut rho = DensityMatrix::zero(1);
        rho.depolarize(0, lam);
        let psi = State::zero(1);
        let f = rho.fidelity_with_pure(&psi);
        assert!((f - (1.0 - lam / 2.0)).abs() < 1e-10, "f = {f}");
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_t_gates_accumulate() {
        let mut c = Circuit::new(1);
        for _ in 0..8 {
            c.gate(0, Gate::T);
        }
        let model = NoiseModel {
            rate: 1e-2,
            target: NoiseTarget::TGatesOnly,
        };
        let mut rho = DensityMatrix::zero(1);
        rho.apply_noisy_circuit(&c, &model);
        // T^8 = identity (up to phase): ideal state is |0>.
        let psi = State::zero(1);
        let f = rho.fidelity_with_pure(&psi);
        assert!(f < 1.0 - 1e-3, "noise must accumulate, f = {f}");
        assert!(f > 0.9, "8 faults at 1e-2 must stay mild, f = {f}");
    }

    #[test]
    fn cx_on_density_matches_statevector() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let mut rho = DensityMatrix::zero(2);
        rho.apply_noisy_circuit(
            &c,
            &NoiseModel {
                rate: 0.0,
                target: NoiseTarget::TGatesOnly,
            },
        );
        let mut psi = State::zero(2);
        psi.apply_circuit(&c);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_preserved_under_noise() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.gate(0, Gate::T);
        c.cx(0, 1);
        c.gate(1, Gate::T);
        let model = NoiseModel {
            rate: 0.05,
            target: NoiseTarget::NonPauliGates,
        };
        let mut rho = DensityMatrix::zero(2);
        rho.apply_noisy_circuit(&c, &model);
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.trace().im.abs() < 1e-9);
    }
}
