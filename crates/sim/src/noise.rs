//! The paper's logical-error model applied to synthesized sequences.

use crate::channel::Ptm;
use gates::{Gate, GateSeq};
use qmath::Mat2;

/// Which gates the depolarizing noise attaches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseTarget {
    /// Only T/T† gates (§4.2: "a highly conservative model … the
    /// worst-case scenario for the synthesis error").
    TGatesOnly,
    /// All non-Pauli gates (§4.4; Pauli gates are frame-tracked and free).
    NonPauliGates,
}

/// A depolarizing logical-error model.
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    /// Depolarizing rate λ per noisy gate (`E(ρ) = (1−λ)ρ + λ·I/2`).
    pub rate: f64,
    /// Which gates are noisy.
    pub target: NoiseTarget,
}

impl NoiseModel {
    /// `true` when `g` attracts a depolarizing fault under this model.
    pub fn is_noisy(&self, g: Gate) -> bool {
        match self.target {
            NoiseTarget::TGatesOnly => g.is_t_like(),
            NoiseTarget::NonPauliGates => !g.is_pauli(),
        }
    }

    /// The exact noisy channel of a gate sequence, as a PTM.
    ///
    /// Remember that `GateSeq` is a *matrix* product: `[g₁, g₂, …]` means
    /// `g₁·g₂·…`, so the rightmost gate acts first and channels compose
    /// leftward.
    pub fn channel_of(&self, seq: &GateSeq) -> Ptm {
        let mut total = Ptm::identity();
        // Rightmost gate acts first: iterate reversed, composing on the left.
        for &g in seq.gates().iter().rev() {
            let mut step = Ptm::from_unitary(&g.matrix());
            if self.is_noisy(g) {
                step = Ptm::depolarizing(self.rate).compose(&step);
            }
            total = step.compose(&total);
        }
        total
    }

    /// Process infidelity of the noisy sequence against an ideal target
    /// unitary — the RQ2 objective combining synthesis and logical error.
    pub fn process_infidelity(&self, seq: &GateSeq, target: &Mat2) -> f64 {
        let ideal = Ptm::from_unitary(target);
        let noisy = self.channel_of(seq);
        ideal.process_infidelity(&noisy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(gs: &[Gate]) -> GateSeq {
        gs.iter().copied().collect()
    }

    #[test]
    fn noiseless_exact_sequence_has_zero_infidelity() {
        let model = NoiseModel {
            rate: 0.0,
            target: NoiseTarget::TGatesOnly,
        };
        let s = seq(&[Gate::H, Gate::T, Gate::H]);
        let target = Mat2::h() * Mat2::t() * Mat2::h();
        assert!(model.process_infidelity(&s, &target) < 1e-12);
    }

    #[test]
    fn infidelity_grows_with_t_count() {
        let model = NoiseModel {
            rate: 1e-3,
            target: NoiseTarget::TGatesOnly,
        };
        let short = seq(&[Gate::T]);
        let long = seq(&[Gate::T, Gate::Tdg, Gate::T, Gate::Tdg, Gate::T]);
        // Both implement T (up to exactness), but the long one has 5 noisy
        // gates.
        let fi_short = model.process_infidelity(&short, &Mat2::t());
        let fi_long = model.process_infidelity(&long, &Mat2::t());
        assert!(fi_long > 3.0 * fi_short, "{fi_long} vs {fi_short}");
    }

    #[test]
    fn clifford_noise_only_under_nonpauli_model() {
        let s = seq(&[Gate::H, Gate::S]);
        let target = Mat2::h() * Mat2::s();
        let t_only = NoiseModel {
            rate: 1e-2,
            target: NoiseTarget::TGatesOnly,
        };
        let all = NoiseModel {
            rate: 1e-2,
            target: NoiseTarget::NonPauliGates,
        };
        assert!(t_only.process_infidelity(&s, &target) < 1e-12);
        assert!(all.process_infidelity(&s, &target) > 1e-3);
    }

    #[test]
    fn single_t_infidelity_matches_closed_form() {
        // One noisy T approximating T exactly: F = 1 − 3λ/4.
        let lam = 4e-3;
        let model = NoiseModel {
            rate: lam,
            target: NoiseTarget::TGatesOnly,
        };
        let fi = model.process_infidelity(&seq(&[Gate::T]), &Mat2::t());
        assert!((fi - 0.75 * lam).abs() < 1e-12);
    }

    #[test]
    fn pauli_gates_always_free() {
        let model = NoiseModel {
            rate: 0.1,
            target: NoiseTarget::NonPauliGates,
        };
        let s = seq(&[Gate::X, Gate::Z, Gate::Y]);
        let target = Mat2::x() * Mat2::z() * Mat2::y();
        assert!(model.process_infidelity(&s, &target) < 1e-12);
    }
}
