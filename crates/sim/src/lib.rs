//! Quantum simulators and the paper's logical-error model.
//!
//! The fidelity studies (RQ2, RQ4) need three simulation capabilities:
//!
//! * [`statevector`] — ideal state evolution up to ~20 qubits, for the
//!   absolute circuit-infidelity numbers of Figure 11;
//! * [`channel`] — single-qubit Pauli transfer matrices, composing the
//!   synthesized sequence with depolarizing noise *exactly* (the RQ2
//!   synthesis-vs-logical-error tradeoff, Figure 9);
//! * [`density`] — exact density-matrix evolution with noise for circuits
//!   up to ~10 qubits, and [`trajectory`] Monte-Carlo sampling beyond
//!   (Figure 13).
//!
//! # Noise convention
//!
//! Depolarizing with rate `λ` means `E(ρ) = (1−λ)ρ + λ·I/2` per noisy
//! gate — equivalently a uniform Pauli fault with probability `3λ/4`.
//! Following §4.2, noise attaches to T gates only (worst case for
//! synthesis error) or to all non-Pauli gates (§4.4).

pub mod channel;
pub mod density;
pub mod fidelity;
pub mod noise;
pub mod statevector;
pub mod trajectory;

pub use channel::Ptm;
pub use density::DensityMatrix;
pub use statevector::{SimError, State};
