//! Single-qubit channels in the Pauli transfer matrix picture.
//!
//! A channel `E` is represented by the real 4×4 matrix
//! `R_ij = ½·tr(Pᵢ·E(Pⱼ))` over the Pauli basis `{I, X, Y, Z}`. Unitary
//! conjugation, depolarizing noise, and composition are all exact matrix
//! operations here, which makes the RQ2 process-fidelity sweep exact
//! rather than sampled.

use qmath::{Complex64, Mat2};

/// A single-qubit Pauli transfer matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ptm {
    /// Row-major 4×4 entries over `{I, X, Y, Z}`.
    pub m: [[f64; 4]; 4],
}

impl Ptm {
    /// The identity channel.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Ptm { m }
    }

    /// The PTM of unitary conjugation `ρ ↦ UρU†`.
    pub fn from_unitary(u: &Mat2) -> Self {
        let paulis = pauli_basis();
        let ud = u.adjoint();
        let mut m = [[0.0; 4]; 4];
        for (j, pj) in paulis.iter().enumerate() {
            let image = *u * *pj * ud;
            for (i, pi) in paulis.iter().enumerate() {
                let t = (*pi * image).trace();
                m[i][j] = t.re / 2.0;
            }
        }
        Ptm { m }
    }

    /// Depolarizing channel `E(ρ) = (1−λ)ρ + λ·I/2`.
    pub fn depolarizing(lambda: f64) -> Self {
        let mut p = Ptm::identity();
        for i in 1..4 {
            p.m[i][i] = 1.0 - lambda;
        }
        p
    }

    /// Channel composition: `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Ptm) -> Ptm {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.m[i][k] * other.m[k][j];
                }
                *cell = acc;
            }
        }
        Ptm { m }
    }

    /// Process (entanglement) fidelity against another channel:
    /// `F = tr(R₁ᵀ·R₂)/4`. For `R₁` unitary and `R₂` its noisy version
    /// this is the operational fidelity used by RQ2.
    pub fn process_fidelity(&self, other: &Ptm) -> f64 {
        let mut acc = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                acc += self.m[i][j] * other.m[i][j];
            }
        }
        acc / 4.0
    }

    /// Process infidelity `1 − F` (clamped at 0).
    pub fn process_infidelity(&self, other: &Ptm) -> f64 {
        (1.0 - self.process_fidelity(other)).max(0.0)
    }
}

/// The Pauli matrices `{I, X, Y, Z}`.
pub fn pauli_basis() -> [Mat2; 4] {
    [Mat2::identity(), Mat2::x(), Mat2::y(), Mat2::z()]
}

/// Trajectory-equivalent fault probability of [`Ptm::depolarizing`]:
/// a uniform X/Y/Z fault occurs with probability `3λ/4`.
pub fn depolarizing_fault_probability(lambda: f64) -> f64 {
    0.75 * lambda
}

#[allow(dead_code)]
fn unused(_: Complex64) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_channel_is_identity_matrix() {
        let p = Ptm::from_unitary(&Mat2::identity());
        assert_eq!(p, Ptm::identity());
    }

    #[test]
    fn unitary_ptms_are_orthogonal_matrices() {
        for u in [Mat2::h(), Mat2::t(), Mat2::u3(0.3, 0.8, -0.2)] {
            let p = Ptm::from_unitary(&u);
            // First row/column: trace preservation + unitality.
            assert!((p.m[0][0] - 1.0).abs() < 1e-12);
            for i in 1..4 {
                assert!(p.m[0][i].abs() < 1e-12);
                assert!(p.m[i][0].abs() < 1e-12);
            }
            // The 3×3 block is orthogonal: PᵀP = I.
            for i in 1..4 {
                for j in 1..4 {
                    let dot: f64 = (1..4).map(|k| p.m[k][i] * p.m[k][j]).sum();
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!((dot - want).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn composition_matches_matrix_product_of_unitaries() {
        let a = Mat2::u3(0.3, 0.5, 0.7);
        let b = Mat2::u3(-0.4, 1.1, 0.2);
        let pa = Ptm::from_unitary(&a);
        let pb = Ptm::from_unitary(&b);
        let pab = Ptm::from_unitary(&(a * b));
        let comp = pa.compose(&pb);
        for i in 0..4 {
            for j in 0..4 {
                assert!((pab.m[i][j] - comp.m[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn depolarizing_fidelity_closed_form() {
        // F(identity, depolarizing λ) = (1 + 3(1−λ))/4 = 1 − 3λ/4.
        let lam = 0.12;
        let f = Ptm::identity().process_fidelity(&Ptm::depolarizing(lam));
        assert!((f - (1.0 - 0.75 * lam)).abs() < 1e-12);
    }

    #[test]
    fn process_fidelity_of_equal_unitaries_is_one() {
        let u = Mat2::u3(1.3, -0.5, 0.9);
        let p = Ptm::from_unitary(&u);
        assert!((p.process_fidelity(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_phase_invisible_to_ptm() {
        let u = Mat2::u3(1.3, -0.5, 0.9);
        let v = u.scale(Complex64::cis(0.7));
        let pu = Ptm::from_unitary(&u);
        let pv = Ptm::from_unitary(&v);
        for i in 0..4 {
            for j in 0..4 {
                assert!((pu.m[i][j] - pv.m[i][j]).abs() < 1e-12);
            }
        }
    }
}
