//! Monte-Carlo Pauli-trajectory simulation for circuits too large for
//! exact density matrices.
//!
//! Depolarizing noise with rate `λ` is equivalent to inserting a uniform
//! X/Y/Z fault with probability `3λ/4` after each noisy gate; averaging
//! pure-state fidelities over sampled fault patterns converges to the
//! density-matrix fidelity.

use crate::noise::NoiseModel;
use crate::statevector::State;
use circuit::{Circuit, Op};
use qmath::Mat2;
use rand::Rng;

/// Runs one noisy trajectory of a discrete circuit.
pub fn run_trajectory<R: Rng + ?Sized>(
    c: &Circuit,
    model: &NoiseModel,
    rng: &mut R,
) -> State {
    let mut s = State::zero(c.n_qubits());
    let p_fault = 0.75 * model.rate;
    for i in c.instrs() {
        match i.op {
            Op::Cx => s.apply_cx(i.q0, i.q1.expect("cx target")),
            Op::Gate1(g) => {
                s.apply_1q(i.q0, &g.matrix());
                if model.is_noisy(g) && rng.gen::<f64>() < p_fault {
                    let pauli = match rng.gen_range(0..3) {
                        0 => Mat2::x(),
                        1 => Mat2::y(),
                        _ => Mat2::z(),
                    };
                    s.apply_1q(i.q0, &pauli);
                }
            }
            op => s.apply_1q(i.q0, &op.matrix()),
        }
    }
    s
}

/// Estimates the fidelity of the noisy circuit against the ideal state by
/// averaging `shots` trajectories.
pub fn average_fidelity<R: Rng + ?Sized>(
    c: &Circuit,
    model: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> f64 {
    let mut ideal = State::zero(c.n_qubits());
    ideal.apply_circuit(c);
    let mut acc = 0.0;
    for _ in 0..shots {
        let s = run_trajectory(c, model, rng);
        acc += ideal.fidelity(&s);
    }
    acc / shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::noise::NoiseTarget;
    use gates::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_gives_unit_fidelity() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.gate(1, Gate::T);
        let model = NoiseModel {
            rate: 0.0,
            target: NoiseTarget::TGatesOnly,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let f = average_fidelity(&c, &model, 10, &mut rng);
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.gate(0, Gate::T);
        c.cx(0, 1);
        c.gate(1, Gate::T);
        c.gate(1, Gate::T);
        let model = NoiseModel {
            rate: 0.08,
            target: NoiseTarget::TGatesOnly,
        };
        // Exact reference.
        let mut rho = DensityMatrix::zero(2);
        rho.apply_noisy_circuit(&c, &model);
        let mut ideal = State::zero(2);
        ideal.apply_circuit(&c);
        let exact = rho.fidelity_with_pure(&ideal);
        // Monte Carlo.
        let mut rng = StdRng::seed_from_u64(7);
        let mc = average_fidelity(&c, &model, 4000, &mut rng);
        assert!(
            (mc - exact).abs() < 0.02,
            "MC {mc} vs exact {exact} diverge"
        );
    }

    #[test]
    fn noise_reduces_fidelity() {
        let mut c = Circuit::new(1);
        for _ in 0..20 {
            c.gate(0, Gate::T);
        }
        let model = NoiseModel {
            rate: 0.05,
            target: NoiseTarget::TGatesOnly,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let f = average_fidelity(&c, &model, 500, &mut rng);
        assert!(f < 0.9, "20 noisy gates at 5% must hurt, f = {f}");
    }
}
