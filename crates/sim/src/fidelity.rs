//! Fidelity metrics shared by the evaluation harness.

use crate::statevector::State;
use circuit::Circuit;

/// State infidelity `1 − |⟨ψ_synth|ψ_true⟩|²` between the outputs of two
/// circuits from the all-zeros state (the paper's circuit-level error
/// metric, §4 "Metrics").
pub fn circuit_state_infidelity(synthesized: &Circuit, reference: &Circuit) -> f64 {
    assert_eq!(synthesized.n_qubits(), reference.n_qubits());
    let mut a = State::zero(synthesized.n_qubits());
    a.apply_circuit(synthesized);
    let mut b = State::zero(reference.n_qubits());
    b.apply_circuit(reference);
    (1.0 - a.fidelity(&b)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::Gate;

    #[test]
    fn identical_circuits_have_zero_infidelity() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        assert!(circuit_state_infidelity(&c, &c) < 1e-12);
    }

    #[test]
    fn t_approximation_error_is_visible() {
        // S approximates T poorly on |+>.
        let mut with_t = Circuit::new(1);
        with_t.h(0);
        with_t.gate(0, Gate::T);
        let mut with_s = Circuit::new(1);
        with_s.h(0);
        with_s.gate(0, Gate::S);
        let infid = circuit_state_infidelity(&with_s, &with_t);
        assert!(infid > 0.05, "infidelity {infid} too small");
    }

    #[test]
    fn global_phase_does_not_matter_for_state_fidelity() {
        let mut a = Circuit::new(1);
        a.gate(0, Gate::Z); // |0> picks up no visible phase
        let b = Circuit::new(1);
        assert!(circuit_state_infidelity(&a, &b) < 1e-12);
    }
}
