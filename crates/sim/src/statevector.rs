//! Ideal statevector simulation.

use circuit::{Circuit, Op};
use qmath::{Complex64, Mat2};

/// A pure state of `n` qubits.
///
/// Qubit 0 is the most significant bit of the basis index (big-endian):
/// basis state `|q₀ q₁ … q_{n−1}⟩` has index `Σ qᵢ·2^{n−1−i}`.
///
/// ```
/// use sim::State;
/// use qmath::Mat2;
/// let mut s = State::zero(2);
/// s.apply_1q(0, &Mat2::x());
/// assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct State {
    n: usize,
    amps: Vec<Complex64>,
}

impl State {
    /// The all-zeros computational basis state.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 26, "statevector limited to 26 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[0] = Complex64::ONE;
        State { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Amplitudes in basis order.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Probability of a basis outcome.
    pub fn probability(&self, basis: usize) -> f64 {
        self.amps[basis].norm_sqr()
    }

    /// Applies a single-qubit unitary to qubit `q`.
    pub fn apply_1q(&mut self, q: usize, m: &Mat2) {
        assert!(q < self.n);
        let stride = 1usize << (self.n - 1 - q);
        let len = self.amps.len();
        let mut base = 0usize;
        while base < len {
            for off in base..base + stride {
                let i0 = off;
                let i1 = off + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m.e[0] * a0 + m.e[1] * a1;
                self.amps[i1] = m.e[2] * a0 + m.e[3] * a1;
            }
            base += stride * 2;
        }
    }

    /// Applies a CNOT with control `c` and target `t`.
    pub fn apply_cx(&mut self, c: usize, t: usize) {
        assert!(c < self.n && t < self.n && c != t);
        let cb = 1usize << (self.n - 1 - c);
        let tb = 1usize << (self.n - 1 - t);
        for i in 0..self.amps.len() {
            if i & cb != 0 && i & tb == 0 {
                self.amps.swap(i, i | tb);
            }
        }
    }

    /// Applies a whole circuit (in circuit time).
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert_eq!(c.n_qubits(), self.n, "qubit count mismatch");
        for i in c.instrs() {
            match i.op {
                Op::Cx => self.apply_cx(i.q0, i.q1.expect("cx target")),
                op => self.apply_1q(i.q0, &op.matrix()),
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &State) -> Complex64 {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Squared norm (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Samples `shots` computational-basis measurement outcomes.
    pub fn sample_counts<R: rand::Rng + ?Sized>(
        &self,
        shots: usize,
        rng: &mut R,
    ) -> std::collections::HashMap<usize, usize> {
        let mut prefix = Vec::with_capacity(self.amps.len());
        let mut total = 0.0;
        for a in &self.amps {
            total += a.norm_sqr();
            prefix.push(total);
        }
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            let x = rng.gen_range(0.0..total);
            let idx = prefix.partition_point(|&p| p <= x).min(self.amps.len() - 1);
            *counts.entry(idx).or_insert(0usize) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::Gate;

    #[test]
    fn x_flips_the_addressed_qubit() {
        let mut s = State::zero(3);
        s.apply_1q(1, &Mat2::x());
        assert!((s.probability(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut s = State::zero(2);
        s.apply_1q(0, &Mat2::h());
        s.apply_cx(0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
    }

    #[test]
    fn cx_control_sensitivity() {
        // Control 1 set: target flips.
        let mut s = State::zero(2);
        s.apply_1q(1, &Mat2::x()); // |01>
        s.apply_cx(1, 0); // control q1 = 1 -> flip q0: |11>
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_matches_manual_application() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.7);
        let mut s1 = State::zero(2);
        s1.apply_circuit(&c);
        let mut s2 = State::zero(2);
        s2.apply_1q(0, &Mat2::h());
        s2.apply_cx(0, 1);
        s2.apply_1q(1, &Mat2::rz(0.7));
        assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.u3(1, 0.3, 0.9, -0.4);
        c.cx(0, 2);
        c.gate(2, Gate::T);
        c.cx(1, 2);
        let mut s = State::zero(3);
        s.apply_circuit(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measurement_sampling_matches_probabilities() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut s = State::zero(1);
        s.apply_1q(0, &Mat2::ry(1.0)); // p(1) = sin²(0.5) ≈ 0.2298
        let mut rng = StdRng::seed_from_u64(3);
        let counts = s.sample_counts(20_000, &mut rng);
        let p1 = *counts.get(&1).unwrap_or(&0) as f64 / 20_000.0;
        assert!((p1 - 0.5f64.sin().powi(2)).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn ghz_probabilities() {
        let n = 4;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        let mut s = State::zero(n);
        s.apply_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability((1 << n) - 1) - 0.5).abs() < 1e-12);
    }
}
