//! Ideal statevector simulation.

use circuit::{Circuit, Op};
use qmath::{Complex64, Mat2};
use std::fmt;

/// A gate-application failure with the instruction position that caused
/// it, mirroring the [`circuit::qasm::QasmError`] convention (position +
/// message) so front ends can report *what* failed instead of panicking
/// on a slice index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimError {
    /// 0-based index of the offending instruction inside the applied
    /// circuit, `None` for direct gate applications and whole-circuit
    /// failures (qubit-count mismatch).
    pub instr: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl SimError {
    fn new(instr: Option<usize>, message: impl Into<String>) -> SimError {
        SimError {
            instr,
            message: message.into(),
        }
    }

    /// Attaches an instruction index to a gate-level error.
    fn at(self, instr: usize) -> SimError {
        SimError {
            instr: Some(instr),
            ..self
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instr {
            Some(i) => write!(f, "instruction {i}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for SimError {}

/// A pure state of `n` qubits.
///
/// Qubit 0 is the most significant bit of the basis index (big-endian):
/// basis state `|q₀ q₁ … q_{n−1}⟩` has index `Σ qᵢ·2^{n−1−i}`.
///
/// ```
/// use sim::State;
/// use qmath::Mat2;
/// let mut s = State::zero(2);
/// s.apply_1q(0, &Mat2::x());
/// assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct State {
    n: usize,
    amps: Vec<Complex64>,
}

impl State {
    /// The all-zeros computational basis state.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 26, "statevector limited to 26 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[0] = Complex64::ONE;
        State { n, amps }
    }

    /// The computational basis state `|index⟩` (big-endian, like
    /// [`State::probability`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(n <= 26, "statevector limited to 26 qubits");
        assert!(index < (1usize << n), "basis index out of range");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[index] = Complex64::ONE;
        State { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Amplitudes in basis order.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Probability of a basis outcome.
    pub fn probability(&self, basis: usize) -> f64 {
        self.amps[basis].norm_sqr()
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range; use [`State::try_apply_1q`] for a
    /// clean error instead.
    pub fn apply_1q(&mut self, q: usize, m: &Mat2) {
        self.try_apply_1q(q, m)
            .unwrap_or_else(|e| panic!("apply_1q: {e}"));
    }

    /// [`State::apply_1q`] that reports an out-of-range qubit as a
    /// [`SimError`] instead of panicking.
    pub fn try_apply_1q(&mut self, q: usize, m: &Mat2) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::new(
                None,
                format!("qubit {q} out of range (state has {} qubits)", self.n),
            ));
        }
        let stride = 1usize << (self.n - 1 - q);
        let len = self.amps.len();
        let mut base = 0usize;
        while base < len {
            for off in base..base + stride {
                let i0 = off;
                let i1 = off + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m.e[0] * a0 + m.e[1] * a1;
                self.amps[i1] = m.e[2] * a0 + m.e[3] * a1;
            }
            base += stride * 2;
        }
        Ok(())
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or equal qubits; use
    /// [`State::try_apply_cx`] for a clean error instead.
    pub fn apply_cx(&mut self, c: usize, t: usize) {
        self.try_apply_cx(c, t)
            .unwrap_or_else(|e| panic!("apply_cx: {e}"));
    }

    /// [`State::apply_cx`] that reports out-of-range or coincident qubits
    /// as a [`SimError`] instead of panicking.
    pub fn try_apply_cx(&mut self, c: usize, t: usize) -> Result<(), SimError> {
        if c >= self.n || t >= self.n {
            return Err(SimError::new(
                None,
                format!(
                    "cx qubit pair ({c}, {t}) out of range (state has {} qubits)",
                    self.n
                ),
            ));
        }
        if c == t {
            return Err(SimError::new(None, format!("cx control equals target ({c})")));
        }
        let cb = 1usize << (self.n - 1 - c);
        let tb = 1usize << (self.n - 1 - t);
        for i in 0..self.amps.len() {
            if i & cb != 0 && i & tb == 0 {
                self.amps.swap(i, i | tb);
            }
        }
        Ok(())
    }

    /// Applies a whole circuit (in circuit time).
    ///
    /// # Panics
    ///
    /// Panics on a qubit-count mismatch or an invalid instruction; use
    /// [`State::try_apply_circuit`] for a clean error instead.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        self.try_apply_circuit(c)
            .unwrap_or_else(|e| panic!("apply_circuit: {e}"));
    }

    /// [`State::apply_circuit`] that reports qubit-count mismatches and
    /// invalid instructions (out-of-range targets, malformed CNOTs) as a
    /// [`SimError`] carrying the offending instruction index — hostile or
    /// hand-built circuits must produce an error, never a slice-index
    /// panic.
    pub fn try_apply_circuit(&mut self, c: &Circuit) -> Result<(), SimError> {
        if c.n_qubits() != self.n {
            return Err(SimError::new(
                None,
                format!(
                    "qubit count mismatch: circuit has {}, state has {}",
                    c.n_qubits(),
                    self.n
                ),
            ));
        }
        self.try_apply_instrs(c.instrs())
    }

    /// Instruction-level core of [`State::try_apply_circuit`]; separate so
    /// tests can exercise instruction lists [`Circuit::push`] would
    /// reject.
    fn try_apply_instrs(&mut self, instrs: &[circuit::Instr]) -> Result<(), SimError> {
        for (idx, i) in instrs.iter().enumerate() {
            match i.op {
                Op::Cx => {
                    let t = i.q1.ok_or_else(|| {
                        SimError::new(Some(idx), "cx instruction without a target qubit")
                    })?;
                    self.try_apply_cx(i.q0, t).map_err(|e| e.at(idx))?;
                }
                op => self
                    .try_apply_1q(i.q0, &op.matrix())
                    .map_err(|e| e.at(idx))?,
            }
        }
        Ok(())
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &State) -> Complex64 {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Squared norm (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Samples `shots` computational-basis measurement outcomes.
    pub fn sample_counts<R: rand::Rng + ?Sized>(
        &self,
        shots: usize,
        rng: &mut R,
    ) -> std::collections::HashMap<usize, usize> {
        let mut prefix = Vec::with_capacity(self.amps.len());
        let mut total = 0.0;
        for a in &self.amps {
            total += a.norm_sqr();
            prefix.push(total);
        }
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            let x = rng.gen_range(0.0..total);
            let idx = prefix.partition_point(|&p| p <= x).min(self.amps.len() - 1);
            *counts.entry(idx).or_insert(0usize) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Instr;
    use gates::Gate;

    #[test]
    fn x_flips_the_addressed_qubit() {
        let mut s = State::zero(3);
        s.apply_1q(1, &Mat2::x());
        assert!((s.probability(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut s = State::zero(2);
        s.apply_1q(0, &Mat2::h());
        s.apply_cx(0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
    }

    #[test]
    fn cx_control_sensitivity() {
        // Control 1 set: target flips.
        let mut s = State::zero(2);
        s.apply_1q(1, &Mat2::x()); // |01>
        s.apply_cx(1, 0); // control q1 = 1 -> flip q0: |11>
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_matches_manual_application() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.7);
        let mut s1 = State::zero(2);
        s1.apply_circuit(&c);
        let mut s2 = State::zero(2);
        s2.apply_1q(0, &Mat2::h());
        s2.apply_cx(0, 1);
        s2.apply_1q(1, &Mat2::rz(0.7));
        assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.u3(1, 0.3, 0.9, -0.4);
        c.cx(0, 2);
        c.gate(2, Gate::T);
        c.cx(1, 2);
        let mut s = State::zero(3);
        s.apply_circuit(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measurement_sampling_matches_probabilities() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut s = State::zero(1);
        s.apply_1q(0, &Mat2::ry(1.0)); // p(1) = sin²(0.5) ≈ 0.2298
        let mut rng = StdRng::seed_from_u64(3);
        let counts = s.sample_counts(20_000, &mut rng);
        let p1 = *counts.get(&1).unwrap_or(&0) as f64 / 20_000.0;
        assert!((p1 - 0.5f64.sin().powi(2)).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn basis_constructor_matches_x_preparation() {
        for idx in 0..8usize {
            let direct = State::basis(3, idx);
            let mut built = State::zero(3);
            for q in 0..3 {
                if (idx >> (2 - q)) & 1 == 1 {
                    built.apply_1q(q, &Mat2::x());
                }
            }
            assert!((direct.fidelity(&built) - 1.0).abs() < 1e-12, "index {idx}");
        }
    }

    #[test]
    fn out_of_range_qubits_are_errors_not_panics() {
        let mut s = State::zero(2);
        let err = s.try_apply_1q(2, &Mat2::h()).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        assert_eq!(err.instr, None);
        // The boundary qubit itself is fine.
        assert!(s.try_apply_1q(1, &Mat2::h()).is_ok());

        let err = s.try_apply_cx(0, 5).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        let err = s.try_apply_cx(1, 1).unwrap_err();
        assert!(err.message.contains("control equals target"), "{err}");

        // A zero-qubit state must not underflow the stride shift.
        let mut empty = State::zero(0);
        let err = empty.try_apply_1q(0, &Mat2::h()).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn circuit_errors_carry_instruction_indices() {
        // A structurally valid circuit applied to the wrong-sized state.
        let mut c = Circuit::new(3);
        c.h(0);
        c.rz(2, 0.4);
        let mut s = State::zero(2);
        let err = s.try_apply_circuit(&c).unwrap_err();
        assert_eq!(err.instr, None, "whole-circuit failure has no index");
        assert!(err.message.contains("qubit count mismatch"), "{err}");
        assert!(err.to_string().contains("mismatch"));

        // Same circuit on a matching state succeeds; the error is not
        // sticky.
        let mut ok = State::zero(3);
        assert!(ok.try_apply_circuit(&c).is_ok());

        // An instruction-level failure names the offending instruction.
        // (`Circuit::push` rejects such instructions, so a hostile list
        // is the only way to produce one — exactly what this guards.)
        let mut s = State::zero(2);
        let mut good = Circuit::new(2);
        good.h(0);
        let bad = Instr {
            op: Op::Gate1(Gate::T),
            q0: 9,
            q1: None,
        };
        let err = s.try_apply_instrs(&[good.instrs()[0], bad]).unwrap_err();
        assert_eq!(err.instr, Some(1), "{err}");
        assert!(err.to_string().starts_with("instruction 1:"), "{err}");
    }

    #[test]
    fn panicking_wrappers_still_panic_with_context() {
        let r = std::panic::catch_unwind(|| {
            let mut s = State::zero(1);
            s.apply_1q(3, &Mat2::h());
        });
        let msg = *r.unwrap_err().downcast::<String>().expect("string payload");
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn ghz_probabilities() {
        let n = 4;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        let mut s = State::zero(n);
        s.apply_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability((1 << n) - 1) - 0.5).abs() < 1e-12);
    }
}
