//! Property-based tests for the channel algebra.

use proptest::prelude::*;
use qmath::Mat2;
use sim::channel::Ptm;

fn arb_unitary() -> impl Strategy<Value = Mat2> {
    (0.0..std::f64::consts::PI, -3.0f64..3.0, -3.0f64..3.0)
        .prop_map(|(t, p, l)| Mat2::u3(t, p, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unitary_channels_preserve_fidelity_one(u in arb_unitary()) {
        let p = Ptm::from_unitary(&u);
        prop_assert!((p.process_fidelity(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composition_is_matrix_product(u in arb_unitary(), v in arb_unitary()) {
        let pu = Ptm::from_unitary(&u);
        let pv = Ptm::from_unitary(&v);
        let puv = Ptm::from_unitary(&(u * v));
        let comp = pu.compose(&pv);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((puv.m[i][j] - comp.m[i][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn depolarizing_shrinks_fidelity_monotonically(
        u in arb_unitary(),
        l1 in 0.0f64..0.5,
        l2 in 0.0f64..0.5,
    ) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let ideal = Ptm::from_unitary(&u);
        let noisy_lo = Ptm::depolarizing(lo).compose(&ideal);
        let noisy_hi = Ptm::depolarizing(hi).compose(&ideal);
        let f_lo = ideal.process_fidelity(&noisy_lo);
        let f_hi = ideal.process_fidelity(&noisy_hi);
        prop_assert!(f_hi <= f_lo + 1e-12);
    }

    #[test]
    fn process_fidelity_bounded(u in arb_unitary(), v in arb_unitary(), l in 0.0f64..1.0) {
        let a = Ptm::from_unitary(&u);
        let e = Ptm::depolarizing(l).compose(&Ptm::from_unitary(&v));
        let f = a.process_fidelity(&e);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f));
    }

    #[test]
    fn ptm_trace_preserving(u in arb_unitary(), l in 0.0f64..1.0) {
        let p = Ptm::depolarizing(l).compose(&Ptm::from_unitary(&u));
        prop_assert!((p.m[0][0] - 1.0).abs() < 1e-12);
        for j in 1..4 {
            prop_assert!(p.m[0][j].abs() < 1e-12);
        }
    }
}
