//! Span-tree assembly: nesting, own-time, and the JSON tree render.

use crate::span::{AttrValue, SpanRecord, ROOT_SPAN_ID};
use std::collections::HashMap;

/// One node of the assembled span tree. All times are milliseconds;
/// `start_ms` is relative to the trace base.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start offset from the trace base.
    pub start_ms: f64,
    /// Wall duration (start to end).
    pub duration_ms: f64,
    /// Self time: duration minus the summed durations of direct
    /// children, clamped at 0 (children created on concurrent threads
    /// can overlap and sum past the parent).
    pub own_ms: f64,
    /// Thread label the span ended on (empty for the root, which is
    /// closed by the tracer).
    pub thread: String,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Child spans, ordered by `(start, id)`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Assembles the tree from a trace's records. Records whose parent
    /// id is missing (a span outliving its parent guard — a caller bug,
    /// but not worth losing data over) reattach to the root.
    pub(crate) fn build(records: &[SpanRecord]) -> SpanNode {
        let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
        let mut children_of: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        let mut root: Option<&SpanRecord> = None;
        for r in records {
            if r.id == ROOT_SPAN_ID {
                root = Some(r);
            } else if ids.contains(&r.parent) {
                children_of.entry(r.parent).or_default().push(r);
            } else {
                children_of.entry(ROOT_SPAN_ID).or_default().push(r);
            }
        }
        match root {
            Some(r) => Self::node(r, &children_of),
            // No root record (a trace finished without one): synthesize
            // an empty root spanning nothing.
            None => SpanNode {
                name: String::new(),
                start_ms: 0.0,
                duration_ms: 0.0,
                own_ms: 0.0,
                thread: String::new(),
                attrs: Vec::new(),
                children: Vec::new(),
            },
        }
    }

    fn node(r: &SpanRecord, children_of: &HashMap<u64, Vec<&SpanRecord>>) -> SpanNode {
        let children: Vec<SpanNode> = children_of
            .get(&r.id)
            .map(|kids| kids.iter().map(|k| Self::node(k, children_of)).collect())
            .unwrap_or_default();
        let duration_ms = r.duration_ms();
        let child_ms: f64 = children.iter().map(|c| c.duration_ms).sum();
        SpanNode {
            name: r.name.clone(),
            start_ms: r.start_us as f64 / 1e3,
            duration_ms,
            own_ms: (duration_ms - child_ms).max(0.0),
            thread: r.thread.clone(),
            attrs: r.attrs.clone(),
            children,
        }
    }

    /// Total node count of this subtree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Renders the node (recursively) as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\": {}, \"start_ms\": {}, \"duration_ms\": {}, \"own_ms\": {}",
            crate::json_string(&self.name),
            crate::fmt_f64(self.start_ms),
            crate::fmt_f64(self.duration_ms),
            crate::fmt_f64(self.own_ms),
        ));
        if !self.thread.is_empty() {
            out.push_str(&format!(", \"thread\": {}", crate::json_string(&self.thread)));
        }
        if !self.attrs.is_empty() {
            out.push_str(", \"attrs\": {");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", crate::json_string(k), v.to_json()));
            }
            out.push('}');
        }
        out.push_str(", \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &str, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            end_us,
            thread: "t".to_string(),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn own_time_subtracts_children_and_clamps() {
        let records = vec![
            rec(1, 0, "root", 0, 10_000),
            rec(2, 1, "a", 1_000, 4_000),
            rec(3, 1, "b", 4_000, 9_000),
            rec(4, 2, "a1", 1_000, 4_000),
        ];
        let tree = SpanNode::build(&records);
        assert_eq!(tree.name, "root");
        assert_eq!(tree.span_count(), 4);
        assert!((tree.duration_ms - 10.0).abs() < 1e-9);
        // root own = 10 - (3 + 5) = 2 ms
        assert!((tree.own_ms - 2.0).abs() < 1e-9, "own {}", tree.own_ms);
        let a = &tree.children[0];
        assert_eq!(a.name, "a");
        // a's child covers all of a: own time clamps to 0.
        assert!(a.own_ms.abs() < 1e-9);
        assert_eq!(a.children[0].name, "a1");
        assert!((a.children[0].own_ms - 3.0).abs() < 1e-9, "leaf own = duration");
    }

    #[test]
    fn children_keep_start_order() {
        let records = vec![
            rec(1, 0, "root", 0, 100),
            rec(2, 1, "late", 50, 60),
            rec(3, 1, "early", 10, 20),
        ];
        // build() consumes records as sorted by the tracer.
        let mut sorted = records;
        sorted.sort_by_key(|r| (r.start_us, r.id));
        let tree = SpanNode::build(&sorted);
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["early", "late"]);
    }

    #[test]
    fn orphans_reattach_to_root() {
        let records = vec![rec(1, 0, "root", 0, 100), rec(5, 99, "orphan", 10, 20)];
        let tree = SpanNode::build(&records);
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "orphan");
    }

    #[test]
    fn json_shape_has_nested_children() {
        let records = vec![rec(1, 0, "root", 0, 2000), rec(2, 1, "child", 0, 1000)];
        let json = SpanNode::build(&records).to_json();
        assert!(json.contains("\"name\": \"root\""), "{json}");
        assert!(json.contains("\"children\": [{\"name\": \"child\""), "{json}");
        assert!(json.contains("\"own_ms\": 1"), "{json}");
    }
}
