//! Span records, the per-request trace context, and the guard types that
//! time spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

/// Span id of every trace's root span.
pub(crate) const ROOT_SPAN_ID: u64 = 1;

/// A typed attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float (non-finite renders as JSON `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    /// Renders the value as a JSON literal.
    pub(crate) fn to_json(&self) -> String {
        match self {
            AttrValue::Str(s) => crate::json_string(s),
            AttrValue::U64(n) => n.to_string(),
            AttrValue::F64(x) => crate::fmt_f64(*x),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<u64> for AttrValue {
    fn from(n: u64) -> Self {
        AttrValue::U64(n)
    }
}
impl From<usize> for AttrValue {
    fn from(n: usize) -> Self {
        AttrValue::U64(n as u64)
    }
}
impl From<u16> for AttrValue {
    fn from(n: u16) -> Self {
        AttrValue::U64(u64::from(n))
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::F64(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// One finished span, in trace-relative microseconds.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root is id 1.
    pub id: u64,
    /// Parent span id (`0` for the root: no parent).
    pub parent: u64,
    /// Span name (e.g. `"queue-wait"`, `"pass:fuse"`).
    pub name: String,
    /// Start offset from the trace base, microseconds.
    pub start_us: u64,
    /// End offset from the trace base, microseconds (`>= start_us`).
    pub end_us: u64,
    /// Label of the thread the span ended on (its name, or the
    /// `ThreadId` debug form for unnamed threads).
    pub thread: String,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        (self.end_us - self.start_us) as f64 / 1e3
    }
}

pub(crate) struct TraceInner {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) base: Instant,
    pub(crate) started_at: SystemTime,
    pub(crate) sampled: bool,
    next_span: AtomicU64,
    pub(crate) records: Mutex<Vec<SpanRecord>>,
    pub(crate) root_attrs: Mutex<Vec<(&'static str, AttrValue)>>,
}

/// The per-request trace context: request id plus the record collector.
/// Cloning is an `Arc` bump; clones (and the [`SpanHandle`]s derived
/// from them) may cross threads freely.
#[derive(Clone)]
pub struct TraceCtx {
    pub(crate) inner: Arc<TraceInner>,
}

impl TraceCtx {
    pub(crate) fn new(id: u64, name: &str, base: Instant, sampled: bool) -> TraceCtx {
        TraceCtx {
            inner: Arc::new(TraceInner {
                id,
                name: name.to_string(),
                base,
                started_at: SystemTime::now(),
                sampled,
                next_span: AtomicU64::new(ROOT_SPAN_ID + 1),
                records: Mutex::new(Vec::new()),
                root_attrs: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The trace (request) id assigned by the [`crate::Tracer`].
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The trace name (e.g. `"POST /v1/compile"`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// A handle to the root span, for creating children.
    pub fn root(&self) -> SpanHandle {
        SpanHandle {
            ctx: self.clone(),
            id: ROOT_SPAN_ID,
        }
    }

    /// Attaches an attribute to the root span.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        self.inner
            .root_attrs
            .lock()
            .expect("trace attrs poisoned")
            .push((key, value.into()));
    }

    /// Microseconds from the trace base to `at` (0 when `at` precedes
    /// the base).
    pub(crate) fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.inner.base).as_micros() as u64
    }

    fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn push(&self, record: SpanRecord) {
        self.inner
            .records
            .lock()
            .expect("trace records poisoned")
            .push(record);
    }
}

fn thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", t.id()),
    }
}

/// A lightweight, cloneable, `Send + Sync` reference to one span inside
/// a trace — the thing to pass across layer and thread boundaries so
/// downstream work can attach child spans.
#[derive(Clone)]
pub struct SpanHandle {
    ctx: TraceCtx,
    id: u64,
}

impl SpanHandle {
    /// The trace this span belongs to.
    pub fn ctx(&self) -> &TraceCtx {
        &self.ctx
    }

    /// Starts a child span now; it ends (and publishes its record) when
    /// the returned guard drops.
    pub fn child(&self, name: &str) -> Span {
        let id = self.ctx.next_span_id();
        Span {
            ctx: self.ctx.clone(),
            id,
            parent: self.id,
            name: name.to_string(),
            start_us: self.ctx.offset_us(Instant::now()),
            fixed_end_us: None,
            attrs: Vec::new(),
        }
    }

    /// Records a child span for *already elapsed* work between two
    /// timestamps (attributes can still be added before the guard
    /// drops). Timestamps before the trace base clamp to the base.
    pub fn child_at(&self, name: &str, start: Instant, end: Instant) -> Span {
        let id = self.ctx.next_span_id();
        let start_us = self.ctx.offset_us(start);
        let end_us = self.ctx.offset_us(end).max(start_us);
        Span {
            ctx: self.ctx.clone(),
            id,
            parent: self.id,
            name: name.to_string(),
            start_us,
            fixed_end_us: Some(end_us),
            attrs: Vec::new(),
        }
    }
}

/// A live span: a guard that buffers its own record locally and
/// publishes it with a single lock push when dropped (or explicitly
/// [`Span::end`]ed).
pub struct Span {
    ctx: TraceCtx,
    id: u64,
    parent: u64,
    name: String,
    start_us: u64,
    /// Set for `child_at` spans: the end offset is fixed, not "drop time".
    fixed_end_us: Option<u64>,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Attaches a typed attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.attrs.push((key, value.into()));
    }

    /// A handle to *this* span, for creating children (possibly on
    /// other threads while this guard is still open).
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            ctx: self.ctx.clone(),
            id: self.id,
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_us = self
            .fixed_end_us
            .unwrap_or_else(|| self.ctx.offset_us(Instant::now()))
            .max(self.start_us);
        self.ctx.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            end_us,
            thread: thread_label(),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ctx() -> TraceCtx {
        TraceCtx::new(7, "test", Instant::now(), true)
    }

    #[test]
    fn spans_record_nesting_and_attrs() {
        let c = ctx();
        let root = c.root();
        {
            let mut outer = root.child("outer");
            outer.attr("k", "v");
            outer.attr("n", 3u64);
            let inner = outer.handle().child("inner");
            inner.end();
        }
        let records = c.inner.records.lock().unwrap();
        assert_eq!(records.len(), 2);
        // Publication order is end order: inner first.
        let inner = &records[0];
        let outer = &records[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, ROOT_SPAN_ID);
        assert_eq!(inner.parent, outer.id);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.end_us <= outer.end_us);
        assert_eq!(
            outer.attrs,
            vec![
                ("k", AttrValue::Str("v".to_string())),
                ("n", AttrValue::U64(3)),
            ]
        );
    }

    #[test]
    fn child_at_records_past_intervals_and_clamps_to_base() {
        let base = Instant::now();
        let c = TraceCtx::new(1, "t", base, true);
        let before = base.checked_sub(Duration::from_millis(5)).unwrap_or(base);
        let end = base + Duration::from_micros(1500);
        c.root().child_at("past", before, end).end();
        let records = c.inner.records.lock().unwrap();
        assert_eq!(records[0].start_us, 0, "pre-base start clamps to 0");
        assert_eq!(records[0].end_us, 1500);
        assert!((records[0].duration_ms() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn handles_work_across_threads() {
        let c = ctx();
        let root = c.root();
        let span = root.child("parent");
        let h = span.handle();
        std::thread::scope(|s| {
            for i in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    let mut child = h.child("worker");
                    child.attr("i", i as u64);
                });
            }
        });
        drop(span);
        let records = c.inner.records.lock().unwrap();
        assert_eq!(records.len(), 5);
        let parent_id = records.iter().find(|r| r.name == "parent").unwrap().id;
        assert_eq!(
            records.iter().filter(|r| r.parent == parent_id).count(),
            4,
            "all cross-thread children attach to the handle's span"
        );
    }

    #[test]
    fn attr_values_render_as_json() {
        assert_eq!(AttrValue::from("x").to_json(), "\"x\"");
        assert_eq!(AttrValue::from(3u64).to_json(), "3");
        assert_eq!(AttrValue::from(true).to_json(), "true");
        assert_eq!(AttrValue::from(0.5).to_json(), "0.5");
        assert_eq!(AttrValue::from(f64::NAN).to_json(), "null");
    }
}
