//! **trace** — dependency-free structured tracing for the serving stack.
//!
//! One request produces one [`TraceCtx`]: a tree of timed [`Span`]s with
//! typed attributes, collected into a single buffer behind one short
//! mutex push per span (spans buffer their own record and publish it on
//! drop, so hot paths never hold a lock while working). The process-wide
//! [`Tracer`] decides which requests are recorded (seeded deterministic
//! sampling), keeps the N most recent finished traces in a ring buffer,
//! and *always* retains requests slower than a configurable threshold —
//! the outliers are exactly the traces worth keeping.
//!
//! # Span model
//!
//! * Every trace has a root span covering the whole request; children
//!   nest arbitrarily deep and may be created on any thread via a
//!   cloned [`SpanHandle`] (handles are `Send + Sync`).
//! * Time is monotonic ([`std::time::Instant`]) relative to the trace
//!   base, stored in microseconds. A span's *own* time is its duration
//!   minus the summed durations of its direct children (clamped at 0) —
//!   the flamegraph self-time.
//! * Spans carry typed attributes ([`AttrValue`]): strings, integers,
//!   floats, booleans.
//! * Already-elapsed work can be recorded after the fact with
//!   [`SpanHandle::child_at`] (e.g. queue wait measured between two
//!   timestamps, or a pass duration absorbed from an existing stats
//!   struct).
//!
//! # Exports
//!
//! A finished trace renders two ways:
//!
//! * [`FinishedTrace::to_json`] — a self-describing JSON tree (the
//!   server's `GET /debug/traces` body items);
//! * [`chrome_trace_json`] — the chrome://tracing `trace_event` array
//!   format, loadable directly in Perfetto or `chrome://tracing` as a
//!   flamegraph (`"ph": "X"` complete events plus thread-name metadata).
//!
//! Tracing is observation-only by construction: nothing in this crate
//! touches the traced computation's inputs or outputs, so compiled
//! artifacts are bit-identical with tracing on or off (the workspace's
//! differential fuzzer runs its server path with tracing enabled to
//! prove it).

mod chrome;
mod span;
mod tracer;
mod tree;

pub use chrome::chrome_trace_json;
pub use span::{AttrValue, Span, SpanHandle, SpanRecord, TraceCtx};
pub use tracer::{FinishedTrace, TraceConfig, TraceSummary, Tracer};
pub use tree::SpanNode;

/// Escapes `raw` as a JSON string literal, quotes included. Local to
/// this crate (it sits below `engine`/`server` in the dependency graph,
/// so it cannot borrow their escapers).
pub(crate) fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Inf).
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fmt_f64_nulls_non_finite() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
