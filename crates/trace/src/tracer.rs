//! The process-wide [`Tracer`]: sampling, slow-request retention, and
//! the ring buffer of recent traces.

use crate::span::{SpanRecord, TraceCtx, ROOT_SPAN_ID};
use crate::tree::SpanNode;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

/// Tracer configuration.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Master switch; `false` makes [`Tracer::begin`] return `None` and
    /// every downstream span site a no-op.
    pub enabled: bool,
    /// Sampling rate: `1` records every request, `n > 1` records one in
    /// `n` on average (seeded, deterministic), `0` records none — slow
    /// requests are still retained either way.
    pub sample_every: u64,
    /// Seed for the sampling decision stream (fixed seed ⇒ identical
    /// keep/drop sequence run to run).
    pub seed: u64,
    /// Ring-buffer capacity: how many finished traces are retained for
    /// `GET /debug/traces` (minimum 1).
    pub ring: usize,
    /// Slow-request threshold in milliseconds: traces at or above it are
    /// always retained and counted in [`Tracer::slow_total`]. `0`
    /// disables the threshold.
    pub slow_ms: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            sample_every: 1,
            seed: 0x5eed_7ace,
            ring: 64,
            slow_ms: 250.0,
        }
    }
}

/// A completed, retained trace.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// The request id.
    pub id: u64,
    /// The trace name (e.g. `"POST /v1/compile"`).
    pub name: String,
    /// Wall time from trace base to finish, milliseconds.
    pub duration_ms: f64,
    /// Whether the trace crossed the slow threshold.
    pub slow: bool,
    /// Whether the sampler selected this trace (slow outliers are
    /// retained even when it did not).
    pub sampled: bool,
    /// Unix epoch milliseconds at [`Tracer::begin`] (wall clock; span
    /// offsets stay monotonic).
    pub started_unix_ms: u64,
    /// Every span, sorted by `(start_us, id)`; the root has id 1.
    pub records: Vec<SpanRecord>,
}

impl FinishedTrace {
    /// Builds the nested span tree (root node) with own-time computed.
    pub fn tree(&self) -> SpanNode {
        SpanNode::build(&self.records)
    }

    /// Renders the self-describing JSON object (one `GET /debug/traces`
    /// array element).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\": {}, \"name\": {}, \"started_unix_ms\": {}, \
             \"duration_ms\": {}, \"slow\": {}, \"sampled\": {}, \"spans\": {}}}",
            self.id,
            crate::json_string(&self.name),
            self.started_unix_ms,
            crate::fmt_f64(self.duration_ms),
            self.slow,
            self.sampled,
            self.tree().to_json(),
        )
    }
}

/// What [`Tracer::finish`] observed about one trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// The request id.
    pub id: u64,
    /// Root duration in milliseconds.
    pub duration_ms: f64,
    /// Whether the trace crossed the slow threshold.
    pub slow: bool,
    /// Whether the trace was kept in the ring.
    pub retained: bool,
}

/// The process-wide trace collector: hands out [`TraceCtx`]s, decides
/// sampling, and retains finished traces in a bounded ring (newest
/// first on read), always keeping slow outliers.
pub struct Tracer {
    cfg: TraceConfig,
    next_id: AtomicU64,
    /// xorshift64 state behind the sampling decisions.
    rng: Mutex<u64>,
    ring: Mutex<VecDeque<Arc<FinishedTrace>>>,
    started: AtomicU64,
    retained: AtomicU64,
    slow: AtomicU64,
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(cfg: TraceConfig) -> Tracer {
        Tracer {
            // A zero xorshift seed would be a fixed point; displace it.
            rng: Mutex::new(cfg.seed | 1),
            next_id: AtomicU64::new(1),
            ring: Mutex::new(VecDeque::new()),
            started: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            cfg,
        }
    }

    /// A tracer that records nothing ([`Tracer::begin`] returns `None`).
    pub fn disabled() -> Tracer {
        Tracer::new(TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        })
    }

    /// The configuration this tracer runs with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Starts a trace with base time "now". `None` when tracing is
    /// disabled.
    pub fn begin(&self, name: &str) -> Option<TraceCtx> {
        self.begin_at(name, Instant::now())
    }

    /// Starts a trace whose base is an *earlier* timestamp (e.g. when
    /// the request was admitted to the queue), so pre-handling time is
    /// inside the trace.
    pub fn begin_at(&self, name: &str, base: Instant) -> Option<TraceCtx> {
        if !self.cfg.enabled {
            return None;
        }
        self.started.fetch_add(1, Ordering::Relaxed);
        let sampled = match self.cfg.sample_every {
            0 => false,
            1 => true,
            n => {
                let mut state = self.rng.lock().expect("tracer rng poisoned");
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                x.is_multiple_of(n)
            }
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Some(TraceCtx::new(id, name, base, sampled))
    }

    /// Finishes a trace: closes the root span, computes the duration,
    /// and retains the trace in the ring when it was sampled or crossed
    /// the slow threshold.
    ///
    /// Call with the last clone of the context after every span guard
    /// has dropped; spans still open at finish are not recorded.
    //
    // By-value on purpose: finishing ends the trace, so the caller must
    // relinquish its context (straggler clones could only write records
    // into a drained buffer).
    #[allow(clippy::needless_pass_by_value)]
    pub fn finish(&self, ctx: TraceCtx) -> TraceSummary {
        let end_us = ctx.offset_us(Instant::now());
        let duration_ms = end_us as f64 / 1e3;
        let slow = self.cfg.slow_ms > 0.0 && duration_ms >= self.cfg.slow_ms;
        if slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        let retained = ctx.inner.sampled || slow;
        let summary = TraceSummary {
            id: ctx.id(),
            duration_ms,
            slow,
            retained,
        };
        if !retained {
            return summary;
        }
        let mut records = std::mem::take(
            &mut *ctx.inner.records.lock().expect("trace records poisoned"),
        );
        records.push(SpanRecord {
            id: ROOT_SPAN_ID,
            parent: 0,
            name: ctx.inner.name.clone(),
            start_us: 0,
            end_us,
            thread: String::new(),
            attrs: std::mem::take(
                &mut *ctx.inner.root_attrs.lock().expect("trace attrs poisoned"),
            ),
        });
        records.sort_by_key(|r| (r.start_us, r.id));
        let started_unix_ms = ctx
            .inner
            .started_at
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let finished = Arc::new(FinishedTrace {
            id: ctx.id(),
            name: ctx.inner.name.clone(),
            duration_ms,
            slow,
            sampled: ctx.inner.sampled,
            started_unix_ms,
            records,
        });
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() >= self.cfg.ring.max(1) {
            ring.pop_front();
        }
        ring.push_back(finished);
        summary
    }

    /// The retained traces, newest first.
    pub fn recent(&self) -> Vec<Arc<FinishedTrace>> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .rev()
            .cloned()
            .collect()
    }

    /// Traces started over the tracer's lifetime.
    pub fn started_total(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Traces retained in (possibly since evicted from) the ring.
    pub fn retained_total(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Traces that crossed the slow threshold.
    pub fn slow_total(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_trivial(t: &Tracer, name: &str) -> Option<TraceSummary> {
        t.begin(name).map(|ctx| {
            ctx.root().child("work").end();
            t.finish(ctx)
        })
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(t.begin("x").is_none());
        assert_eq!(t.started_total(), 0);
        assert!(t.recent().is_empty());
    }

    #[test]
    fn sample_all_retains_in_order_newest_first() {
        let t = Tracer::new(TraceConfig {
            ring: 8,
            slow_ms: 0.0,
            ..TraceConfig::default()
        });
        for i in 0..3 {
            finish_trivial(&t, &format!("req-{i}")).unwrap();
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].name, "req-2", "newest first");
        assert_eq!(recent[2].name, "req-0");
        assert_eq!(t.retained_total(), 3);
        assert_eq!(t.slow_total(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new(TraceConfig {
            ring: 4,
            slow_ms: 0.0,
            ..TraceConfig::default()
        });
        for i in 0..10 {
            finish_trivial(&t, &format!("req-{i}")).unwrap();
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 4, "ring capacity bounds retention");
        let names: Vec<&str> = recent.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["req-9", "req-8", "req-7", "req-6"]);
        assert_eq!(t.retained_total(), 10, "evicted traces still counted");
    }

    #[test]
    fn sampling_is_deterministic_under_a_fixed_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let t = Tracer::new(TraceConfig {
                sample_every: 3,
                seed,
                ring: 64,
                slow_ms: 0.0,
                ..TraceConfig::default()
            });
            (0..48)
                .map(|i| {
                    finish_trivial(&t, &format!("r{i}")).unwrap().retained
                })
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same keep/drop sequence");
        let kept = a.iter().filter(|&&k| k).count();
        assert!(
            kept > 4 && kept < 44,
            "1-in-3 sampling keeps some and drops some, kept {kept}"
        );
        let c = run(1234567);
        assert_ne!(a, c, "different seed, different sequence");
    }

    #[test]
    fn slow_requests_are_retained_even_when_not_sampled() {
        let t = Tracer::new(TraceConfig {
            sample_every: 0, // sample nothing
            ring: 8,
            slow_ms: 0.000001, // everything is "slow"
            ..TraceConfig::default()
        });
        let ctx = t.begin("slowpoke").unwrap();
        ctx.root().child("work").end();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = t.finish(ctx);
        assert!(s.slow && s.retained);
        assert_eq!(t.slow_total(), 1);
        let recent = t.recent();
        assert_eq!(recent.len(), 1);
        assert!(recent[0].slow);
        assert!(!recent[0].sampled);
    }

    #[test]
    fn unsampled_fast_requests_are_dropped() {
        let t = Tracer::new(TraceConfig {
            sample_every: 0,
            slow_ms: 1e9, // nothing is slow
            ..TraceConfig::default()
        });
        let s = finish_trivial(&t, "fast").unwrap();
        assert!(!s.slow && !s.retained);
        assert!(t.recent().is_empty());
        assert_eq!(t.started_total(), 1);
    }

    #[test]
    fn finished_trace_json_is_self_describing() {
        let t = Tracer::new(TraceConfig {
            slow_ms: 0.0,
            ..TraceConfig::default()
        });
        let ctx = t.begin("POST /v1/compile").unwrap();
        ctx.attr("status", 200u64);
        {
            let mut s = ctx.root().child("handle");
            s.attr("endpoint", "compile");
        }
        t.finish(ctx);
        let json = t.recent()[0].to_json();
        for needle in [
            "\"trace_id\": 1",
            "\"name\": \"POST /v1/compile\"",
            "\"duration_ms\":",
            "\"spans\": {",
            "\"own_ms\":",
            "\"children\": [",
            "\"handle\"",
            "\"endpoint\": \"compile\"",
            "\"status\": 200",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
