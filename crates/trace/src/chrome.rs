//! chrome://tracing (`trace_event`) export: the JSON object format with
//! `"ph": "X"` complete events, loadable directly in Perfetto or
//! `chrome://tracing` as a flamegraph.
//!
//! Mapping: each trace becomes one *process* (`pid` = trace id, named
//! after the trace), each thread label observed in the trace becomes one
//! *track* (`tid`, named via `"M"` thread-name metadata events), and each
//! span becomes one complete event with `ts`/`dur` in microseconds.

use crate::span::SpanRecord;
use crate::tracer::FinishedTrace;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Renders one or more finished traces as a chrome://tracing JSON
/// object: `{"displayTimeUnit": "ms", "traceEvents": [...]}`.
pub fn chrome_trace_json(traces: &[Arc<FinishedTrace>]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    for t in traces {
        write_trace(t, &mut out, &mut first);
    }
    out.push_str("]}\n");
    out
}

fn write_trace(t: &FinishedTrace, out: &mut String, first: &mut bool) {
    let pid = t.id;
    let mut sep = |out: &mut String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    sep(out);
    let _ = write!(
        out,
        "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {{\"name\": {}}}}}",
        crate::json_string(&format!("trasyn request {} ({})", t.id, t.name)),
    );

    // Stable thread-label → tid mapping: first appearance in record
    // order (records are sorted by start time). The root's empty label
    // shares tid 0 with the process-name track.
    let mut tids: HashMap<&str, u64> = HashMap::new();
    tids.insert("", 0);
    for r in &t.records {
        let next = tids.len() as u64;
        let tid = *tids.entry(r.thread.as_str()).or_insert(next);
        if tid == next && !r.thread.is_empty() {
            sep(out);
            let _ = write!(
                out,
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"name\": \"thread_name\", \"args\": {{\"name\": {}}}}}",
                crate::json_string(&r.thread),
            );
        }
    }

    for r in &t.records {
        sep(out);
        write_span(pid, tids[r.thread.as_str()], r, out);
    }
}

fn write_span(pid: u64, tid: u64, r: &SpanRecord, out: &mut String) {
    let _ = write!(
        out,
        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"cat\": \"trasyn\", \
         \"name\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{",
        crate::json_string(&r.name),
        r.start_us,
        r.end_us - r.start_us,
    );
    for (i, (k, v)) in r.attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", crate::json_string(k), v.to_json());
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    fn trace() -> Arc<FinishedTrace> {
        Arc::new(FinishedTrace {
            id: 3,
            name: "POST /v1/compile".to_string(),
            duration_ms: 2.0,
            slow: false,
            sampled: true,
            started_unix_ms: 1_700_000_000_000,
            records: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "POST /v1/compile".to_string(),
                    start_us: 0,
                    end_us: 2000,
                    thread: String::new(),
                    attrs: vec![("status", AttrValue::U64(200))],
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "synthesize".to_string(),
                    start_us: 100,
                    end_us: 1800,
                    thread: "synth-0".to_string(),
                    attrs: Vec::new(),
                },
            ],
        })
    }

    #[test]
    fn chrome_export_has_complete_and_metadata_events() {
        let json = chrome_trace_json(&[trace()]);
        for needle in [
            "\"displayTimeUnit\": \"ms\"",
            "\"traceEvents\": [",
            "\"ph\": \"M\"",
            "\"name\": \"process_name\"",
            "\"name\": \"thread_name\"",
            "\"name\": \"synth-0\"",
            "\"ph\": \"X\"",
            "\"ts\": 100",
            "\"dur\": 1700",
            "\"pid\": 3",
            "\"status\": 200",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.trim_end().ends_with("]}"), "well-terminated object");
    }

    #[test]
    fn multiple_traces_share_one_event_array() {
        let json = chrome_trace_json(&[trace(), trace()]);
        assert_eq!(json.matches("process_name").count(), 2);
        // No doubled array separators or trailing commas.
        assert!(!json.contains(",,"));
        assert!(!json.contains(", ]"));
    }
}
