//! End-to-end certification of real synthesizer output.

use gates::ExactMat2;
use proptest::prelude::*;
use qmath::Mat2;
use verify::{verify_sequence, CheckMethod, TRACE_TO_OPERATOR_FACTOR};

#[test]
fn gridsynth_rz_output_is_certified_within_epsilon() {
    for (angle, eps) in [
        (0.37, 1e-2),
        (-1.2, 1e-3),
        (2.9, 1e-2),
        (0.001, 1e-3),
    ] {
        let r = gridsynth::synthesize_rz(angle, eps).expect("gridsynth converges");
        // The backend reports Eq. 2 trace distance; the certificate
        // bounds the operator norm, so convert the budget.
        let cert = verify_sequence(&Mat2::rz(angle), &r.seq, eps * TRACE_TO_OPERATOR_FACTOR);
        assert!(cert.equivalent, "angle {angle}, eps {eps}: {cert}");
        assert_eq!(cert.method, CheckMethod::OperatorNorm);
        assert!(cert.distance > 0.0, "approximation is never exact generically");
    }
}

#[test]
fn certificate_rejects_a_wrong_synthesis() {
    // The right sequence for the wrong angle: far outside epsilon.
    let r = gridsynth::synthesize_rz(0.37, 1e-3).expect("converges");
    let cert = verify_sequence(&Mat2::rz(1.9), &r.seq, 1e-3 * TRACE_TO_OPERATOR_FACTOR);
    assert!(!cert.equivalent, "{cert}");
    assert!(cert.distance > 0.5, "{cert}");
}

#[test]
fn exact_synthesis_is_certified_in_the_ring() {
    // Clifford+T group members resynthesize exactly; the certificate for
    // the composed sequences must be ring-exact, not float-tolerant.
    let seq: gates::GateSeq = [
        gates::Gate::H,
        gates::Gate::T,
        gates::Gate::S,
        gates::Gate::H,
        gates::Gate::Tdg,
    ]
    .into_iter()
    .collect();
    let m = ExactMat2::from_seq(&seq);
    let out = gridsynth::exact_synth::exact_synthesize(m).expect("group member");
    assert!(verify::sequences_exactly_equal(&seq, &out));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every gridsynth Rz synthesis across random angles/epsilons is
    /// certified by the exact-composition checker.
    #[test]
    fn random_rz_syntheses_certify(angle in -3.1f64..3.1, eps_exp in 1.0f64..3.0) {
        let eps = 10f64.powf(-eps_exp);
        let r = gridsynth::synthesize_rz(angle, eps).expect("gridsynth converges");
        let cert = verify_sequence(&Mat2::rz(angle), &r.seq, eps * TRACE_TO_OPERATOR_FACTOR);
        prop_assert!(cert.equivalent, "angle {angle}, eps {eps}: {cert}");
    }
}
