//! The equivalence checker behind [`Certificate`]s.

use crate::certificate::{Certificate, CheckMethod};
use circuit::{Circuit, Op};
use gates::{ExactMat2, Gate, GateSeq};
use qmath::distance::operator_norm_distance;
use qmath::{CMatrix, Complex64, Mat2};
use sim::{SimError, State};
use std::fmt;

/// Largest qubit count the statevector oracle accepts. Beyond this the
/// full-unitary comparison (`4^n` amplitudes) stops being "minutes, not
/// hours" territory; callers must treat larger circuits as unverifiable
/// rather than silently skipping them.
pub const MAX_ORACLE_QUBITS: usize = 8;

/// Largest qubit count for which the oracle bounds the distance by an
/// exact largest singular value (the workspace Jacobi SVD is intended for
/// matrices up to ~16×16). Between this and [`MAX_ORACLE_QUBITS`] the
/// Frobenius norm is used — still a certified upper bound, just looser.
pub const SVD_ORACLE_QUBITS: usize = 4;

/// Why a pair of circuits could not be checked at all (as opposed to
/// checking and failing, which is a non-`equivalent` [`Certificate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The circuits act on different numbers of qubits.
    QubitMismatch {
        /// Reference circuit's qubit count.
        reference: usize,
        /// Candidate circuit's qubit count.
        candidate: usize,
    },
    /// The circuits exceed [`MAX_ORACLE_QUBITS`].
    TooLarge {
        /// The offending qubit count.
        n_qubits: usize,
    },
    /// A circuit could not be simulated (malformed instruction).
    Sim(SimError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::QubitMismatch {
                reference,
                candidate,
            } => write!(
                f,
                "qubit count mismatch: reference has {reference}, candidate has {candidate}"
            ),
            VerifyError::TooLarge { n_qubits } => write!(
                f,
                "{n_qubits} qubits exceed the {MAX_ORACLE_QUBITS}-qubit oracle limit"
            ),
            VerifyError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> VerifyError {
        VerifyError::Sim(e)
    }
}

/// Float slack added on top of a synthesis error budget when checking a
/// compiled circuit against its request: the lowering pipeline is
/// semantics-preserving only up to floating-point noise — gate fusion
/// drops identity runs within `1e-10`, the basis lowerings snap trivial
/// rotations within `1e-9` ([`circuit::trivial::as_trivial`]), and every
/// `U3` re-composition rounds. Each instruction can contribute at most a
/// few `1e-9` of operator-norm drift, so the slack scales with size while
/// staying far below every practical epsilon.
pub fn float_slack(total_instrs: usize) -> f64 {
    1e-8 + 4e-9 * total_instrs as f64
}

/// Metric conversion from the synthesis backends' reported per-rotation
/// error (the paper's Eq. 2 trace distance `D(U,V) = sin x`, with
/// `e^{±ix}` the phase-aligned eigenvalues of `U†V`) to the operator
/// norm this crate certifies (`min_φ ‖U − e^{iφ}V‖ = 2 sin(x/2) =
/// D / cos(x/2)`). The worst-case ratio over `D ≤ 0.5` (the largest
/// epsilon any front-end accepts) is `sqrt(2 / (1 + sqrt(0.75))) ≈
/// 1.036`; the constant rounds it up.
pub const TRACE_TO_OPERATOR_FACTOR: f64 = 1.04;

/// The certified-distance budget for a compile whose backends reported a
/// summed Eq. 2 synthesis error of `total_error`: the metric-converted
/// error plus [`float_slack`] for `total_instrs` instructions across
/// input and output.
pub fn error_bound(total_error: f64, total_instrs: usize) -> f64 {
    total_error * TRACE_TO_OPERATOR_FACTOR + float_slack(total_instrs)
}

/// If the circuit is single-qubit and fully discrete, its gate sequence
/// in **matrix order** (leftmost factor = last instruction in circuit
/// time). `None` when a rotation or CNOT is present.
pub fn discrete_1q_seq(c: &Circuit) -> Option<GateSeq> {
    if c.n_qubits() != 1 {
        return None;
    }
    let mut gates: Vec<Gate> = Vec::with_capacity(c.len());
    for i in c.instrs().iter().rev() {
        match i.op {
            Op::Gate1(g) => gates.push(g),
            _ => return None,
        }
    }
    Some(GateSeq::from_gates(gates))
}

/// Exact ring equality of two Clifford+T sequences up to a global phase
/// `ω^j` — no floating point anywhere.
pub fn sequences_exactly_equal(a: &GateSeq, b: &GateSeq) -> bool {
    ExactMat2::from_seq(a).phase_equivalent(&ExactMat2::from_seq(b))
}

/// Certifies a synthesized Clifford+T sequence against the rotation
/// matrix it replaces. The sequence is composed **exactly** in `D[ω]`
/// (one float conversion at the very end, no per-gate float
/// accumulation); the certified distance is the phase-minimized operator
/// norm against `target`.
pub fn verify_sequence(target: &Mat2, seq: &GateSeq, bound: f64) -> Certificate {
    let composed = ExactMat2::from_seq(seq).to_mat2();
    let distance = operator_norm_distance(target, &composed);
    Certificate {
        method: CheckMethod::OperatorNorm,
        equivalent: distance <= bound,
        distance,
        bound,
        n_qubits: 1,
    }
}

/// The numeric single-qubit operator of a circuit (matrix order: later
/// instructions multiply on the left).
fn circuit_matrix_1q(c: &Circuit) -> Mat2 {
    let mut m = Mat2::identity();
    for i in c.instrs() {
        m = i.op.matrix() * m;
    }
    m
}

/// The full `2^n × 2^n` unitary of a circuit, built column by column
/// through the statevector simulator (column `j` is the evolution of
/// basis state `|j⟩`).
///
/// This is the oracle's view of a circuit — independent of every
/// composition rule the compiler itself uses.
pub fn circuit_unitary(c: &Circuit) -> Result<CMatrix, VerifyError> {
    let n = c.n_qubits();
    if n > MAX_ORACLE_QUBITS {
        return Err(VerifyError::TooLarge { n_qubits: n });
    }
    let dim = 1usize << n;
    let mut u = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let mut s = State::basis(n, col);
        s.try_apply_circuit(c)?;
        for (row, amp) in s.amplitudes().iter().enumerate() {
            u[(row, col)] = *amp;
        }
    }
    Ok(u)
}

/// Checks `candidate ≡ reference` up to global phase, within `bound`,
/// using the strongest applicable tier (see the crate docs):
///
/// 1. single-qubit, both discrete → exact ring equality (distance `0`);
/// 2. single-qubit otherwise (or on exact mismatch) → phase-minimized
///    operator norm of the composed 2×2 matrices;
/// 3. multi-qubit up to [`SVD_ORACLE_QUBITS`] → statevector oracle with
///    an exact `σ_max` bound;
/// 4. multi-qubit up to [`MAX_ORACLE_QUBITS`] → statevector oracle with
///    a Frobenius bound.
///
/// An exact-ring *mismatch* falls through to the numeric tier rather than
/// failing outright: two discrete circuits can legitimately differ by an
/// approximation the request's epsilon allows (a synthesized trivial
/// rotation), and the certificate should then report the honest numeric
/// distance.
pub fn verify_circuits(
    reference: &Circuit,
    candidate: &Circuit,
    bound: f64,
) -> Result<Certificate, VerifyError> {
    if reference.n_qubits() != candidate.n_qubits() {
        return Err(VerifyError::QubitMismatch {
            reference: reference.n_qubits(),
            candidate: candidate.n_qubits(),
        });
    }
    let n = reference.n_qubits();
    if n <= 1 {
        if let (Some(a), Some(b)) = (discrete_1q_seq(reference), discrete_1q_seq(candidate)) {
            if sequences_exactly_equal(&a, &b) {
                return Ok(Certificate {
                    method: CheckMethod::ExactRing,
                    equivalent: true,
                    distance: 0.0,
                    bound,
                    n_qubits: n,
                });
            }
        }
        let distance =
            operator_norm_distance(&circuit_matrix_1q(reference), &circuit_matrix_1q(candidate));
        return Ok(Certificate {
            method: CheckMethod::OperatorNorm,
            equivalent: distance <= bound,
            distance,
            bound,
            n_qubits: n,
        });
    }
    if n > MAX_ORACLE_QUBITS {
        return Err(VerifyError::TooLarge { n_qubits: n });
    }
    let u = circuit_unitary(reference)?;
    let v = circuit_unitary(candidate)?;
    // Align global phase at the Frobenius-optimal multiplier
    // conj(Tr(U†V))/|Tr(U†V)| (with U = e^{iα}V the trace is N·e^{−iα},
    // so V is scaled by e^{+iα}); any fixed phase yields a valid upper
    // bound on min_φ ‖U − e^{iφ}V‖.
    let t = (u.adjoint() * v.clone()).trace();
    let phase = if t.abs() < 1e-300 {
        Complex64::ONE
    } else {
        t.conj().scale(1.0 / t.abs())
    };
    let diff = &u - &v.scale(phase);
    let (method, distance) = if n <= SVD_ORACLE_QUBITS {
        let s = qmath::decomp::svd(&diff).s;
        (
            CheckMethod::StatevectorSvd,
            s.first().copied().unwrap_or(0.0),
        )
    } else {
        (CheckMethod::StatevectorFrobenius, diff.frobenius_norm())
    };
    Ok(Certificate {
        method,
        equivalent: distance <= bound,
        distance,
        bound,
        n_qubits: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(gs: &[Gate]) -> GateSeq {
        GateSeq::from_gates(gs.to_vec())
    }

    fn circuit_1q(gs: &[Gate]) -> Circuit {
        let mut c = Circuit::new(1);
        for &g in gs {
            c.gate(0, g);
        }
        c
    }

    #[test]
    fn exact_ring_certifies_phase_equivalent_discrete_circuits() {
        // X·Y ≡ Z up to the global phase i = ω²: exactly equivalent in
        // the ring, even though no float comparison could call it exact.
        let a = circuit_1q(&[Gate::Y, Gate::X]); // circuit time: Y then X ⇒ matrix X·Y
        let b = circuit_1q(&[Gate::Z]);
        let cert = verify_circuits(&a, &b, 0.0).unwrap();
        assert_eq!(cert.method, CheckMethod::ExactRing);
        assert!(cert.equivalent);
        assert_eq!(cert.distance, 0.0);
    }

    #[test]
    fn exact_ring_rejects_the_phase_fold_parity_bug_shape() {
        // The PR 1 miscompile: X;T emitted as X;Tdg. Same gates, wrong
        // phase sign — a float tolerance of 0.38 would let it through,
        // the ring does not.
        let good = circuit_1q(&[Gate::X, Gate::T]);
        let bad = circuit_1q(&[Gate::X, Gate::Tdg]);
        let cert = verify_circuits(&good, &bad, 1e-9).unwrap();
        assert!(!cert.equivalent, "{cert}");
        assert_eq!(cert.method, CheckMethod::OperatorNorm);
        assert!(cert.distance > 0.3, "T vs Tdg differ by ~2·sin(π/8)");
    }

    #[test]
    fn sequences_exact_equality_is_phase_robust() {
        assert!(sequences_exactly_equal(
            &seq(&[Gate::T, Gate::T]),
            &seq(&[Gate::S])
        ));
        assert!(!sequences_exactly_equal(
            &seq(&[Gate::T]),
            &seq(&[Gate::Tdg])
        ));
        // H·T·H vs T·H·T: genuinely different operators.
        assert!(!sequences_exactly_equal(
            &seq(&[Gate::H, Gate::T, Gate::H]),
            &seq(&[Gate::T, Gate::H, Gate::T])
        ));
    }

    #[test]
    fn operator_norm_tier_handles_rotations() {
        let mut a = Circuit::new(1);
        a.rz(0, 0.3);
        let mut b = Circuit::new(1);
        b.rz(0, 0.3 + 1e-4);
        let cert = verify_circuits(&a, &b, 1e-3).unwrap();
        assert_eq!(cert.method, CheckMethod::OperatorNorm);
        assert!(cert.equivalent, "{cert}");
        assert!(cert.distance > 1e-6 && cert.distance < 1e-3, "{cert}");
        let tight = verify_circuits(&a, &b, 1e-6).unwrap();
        assert!(!tight.equivalent);
    }

    #[test]
    fn statevector_svd_tier_certifies_multi_qubit_equivalence() {
        // CX pair cancellation with a phase gate in a commuting position.
        let mut a = Circuit::new(2);
        a.gate(1, Gate::T);
        a.cx(0, 1);
        a.cx(0, 1);
        a.gate(1, Gate::T);
        let mut b = Circuit::new(2);
        b.gate(1, Gate::S);
        let cert = verify_circuits(&a, &b, 1e-10).unwrap();
        assert_eq!(cert.method, CheckMethod::StatevectorSvd);
        assert!(cert.equivalent, "{cert}");
        assert!(cert.distance < 1e-12, "{cert}");
    }

    #[test]
    fn statevector_svd_tier_measures_real_differences() {
        let mut a = Circuit::new(2);
        a.h(0);
        a.cx(0, 1);
        let mut b = a.clone();
        b.rz(1, 0.01);
        let cert = verify_circuits(&a, &b, 1e-4).unwrap();
        assert!(!cert.equivalent, "{cert}");
        // Rz(θ) is within θ/2 + O(θ³) of identity in operator norm.
        assert!((cert.distance - 0.005).abs() < 1e-4, "{cert}");
    }

    #[test]
    fn frobenius_tier_kicks_in_above_svd_limit() {
        let n = SVD_ORACLE_QUBITS + 1;
        let mut a = Circuit::new(n);
        for q in 0..n {
            a.h(q);
        }
        let cert = verify_circuits(&a, &a, 1e-10).unwrap();
        assert_eq!(cert.method, CheckMethod::StatevectorFrobenius);
        assert!(cert.equivalent, "{cert}");
    }

    #[test]
    fn oracle_refuses_oversized_circuits() {
        let big = Circuit::new(MAX_ORACLE_QUBITS + 1);
        let err = verify_circuits(&big, &big, 1.0).unwrap_err();
        assert_eq!(
            err,
            VerifyError::TooLarge {
                n_qubits: MAX_ORACLE_QUBITS + 1
            }
        );
        assert!(err.to_string().contains("oracle limit"));
    }

    #[test]
    fn qubit_mismatch_is_an_error_not_a_verdict() {
        let a = Circuit::new(1);
        let b = Circuit::new(2);
        let err = verify_circuits(&a, &b, 1.0).unwrap_err();
        assert!(matches!(err, VerifyError::QubitMismatch { .. }));
    }

    #[test]
    fn verify_sequence_composes_exactly() {
        // HTH approximates Rx(π/4)… poorly; against its own matrix the
        // distance is 0 within float conversion.
        let s = seq(&[Gate::H, Gate::T, Gate::S, Gate::H, Gate::Tdg]);
        let target = ExactMat2::from_seq(&s).to_mat2();
        let cert = verify_sequence(&target, &s, 1e-12);
        assert!(cert.equivalent, "{cert}");
        let off = verify_sequence(&Mat2::rz(0.3), &seq(&[Gate::T]), 1e-3);
        assert!(!off.equivalent);
    }

    #[test]
    fn circuit_unitary_matches_known_gates() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let u = circuit_unitary(&c).unwrap();
        // CX with control q0 (MSB): swaps |10⟩ and |11⟩.
        assert!(u[(2, 3)].approx_eq(Complex64::ONE, 1e-12));
        assert!(u[(3, 2)].approx_eq(Complex64::ONE, 1e-12));
        assert!(u[(0, 0)].approx_eq(Complex64::ONE, 1e-12));
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn float_slack_grows_with_size_but_stays_small() {
        assert!(float_slack(0) < 1e-7);
        assert!(float_slack(1000) < 1e-4);
        assert!(float_slack(10) > float_slack(0));
    }
}
