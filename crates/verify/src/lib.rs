//! **verify** — exact equivalence certificates for compiled circuits.
//!
//! Four independent front-ends lower the same rotations in this workspace
//! (the `trasyn-compile` CLI, the engine batch API at any thread count,
//! the HTTP server, the repro driver). This crate turns "those agree"
//! from a sampled property into a *checked* one: given the circuit a
//! request asked for and the Clifford+T circuit a compile path produced,
//! [`verify_circuits`] returns a serializable [`Certificate`] that either
//! certifies equivalence up to global phase or reports a certified
//! distance bound violation.
//!
//! Three checking tiers, strongest applicable tier wins:
//!
//! * **Exact ring** ([`CheckMethod::ExactRing`]) — single-qubit circuits
//!   whose instructions are all discrete Clifford+T gates compose in the
//!   exact ring `D[ω]` ([`gates::ExactMat2`], entries in
//!   [`rings::DOmega`]); equivalence up to one of the 8 global phases
//!   `ω^j` is decided by [`gates::ExactMat2::phase_canonical`] equality —
//!   **no float tolerance anywhere**. (Unit-modulus units of `Z[ω, 1/√2]`
//!   are exactly the `ω^j`, so "up to global phase" and "up to `ω^j`"
//!   coincide for ring-valued matrices.)
//! * **Operator norm** ([`CheckMethod::OperatorNorm`]) — single-qubit
//!   circuits with rotations compose numerically; the certified distance
//!   is `min_φ ‖U − e^{iφ}V‖` ([`qmath::distance::operator_norm_distance`]).
//! * **Statevector oracle** ([`CheckMethod::StatevectorSvd`] /
//!   [`CheckMethod::StatevectorFrobenius`]) — multi-qubit circuits are
//!   applied column-by-column to computational basis states
//!   ([`sim::State`]); the difference `U − e^{iφ}V` (at the
//!   Frobenius-optimal phase `φ = arg Tr(U†V)`) is bounded by its largest
//!   singular value (exact, via [`qmath::decomp::svd`], up to
//!   [`SVD_ORACLE_QUBITS`] qubits) or by its Frobenius norm (a valid but
//!   looser upper bound, up to [`MAX_ORACLE_QUBITS`] qubits).
//!
//! Every reported `distance` is a certified **upper bound** on the
//! phase-minimized operator-norm distance, so `distance <= bound` really
//! certifies the compiled circuit is within the requested error budget.

mod certificate;
mod check;

pub use certificate::{Certificate, CheckMethod};
pub use check::{
    circuit_unitary, discrete_1q_seq, error_bound, float_slack, sequences_exactly_equal,
    verify_circuits, verify_sequence, VerifyError, MAX_ORACLE_QUBITS, SVD_ORACLE_QUBITS,
    TRACE_TO_OPERATOR_FACTOR,
};
