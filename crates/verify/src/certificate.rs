//! The serializable verification certificate.

use std::fmt;

/// Which checking tier produced a [`Certificate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckMethod {
    /// Exact composition in `D[ω]`, equality up to `ω^j` global phase.
    /// No floating point is consulted; a passing certificate has
    /// `distance == 0.0` by construction.
    ExactRing,
    /// Numeric single-qubit composition; the distance is the
    /// phase-minimized operator norm `min_φ ‖U − e^{iφ}V‖`.
    OperatorNorm,
    /// Statevector-column oracle with an exact largest-singular-value
    /// bound on `‖U − e^{iφ}V‖` (dimensions up to
    /// `2^`[`crate::SVD_ORACLE_QUBITS`]).
    StatevectorSvd,
    /// Statevector-column oracle bounded by the Frobenius norm of
    /// `U − e^{iφ}V` — still a certified upper bound on the operator
    /// norm, but looser by up to `2^{n/2}`.
    StatevectorFrobenius,
    /// No distance could be computed because the circuits are not even
    /// structurally comparable (qubit-count mismatch, unsimulable
    /// instruction) — always a *failing* certificate with infinite
    /// distance, never a skip: a compile that changed the qubit count is
    /// the worst miscompile class there is.
    Structural,
}

impl CheckMethod {
    /// Stable lowercase label used in JSON and logs.
    pub fn label(&self) -> &'static str {
        match self {
            CheckMethod::ExactRing => "exact-ring",
            CheckMethod::OperatorNorm => "operator-norm",
            CheckMethod::StatevectorSvd => "statevector-svd",
            CheckMethod::StatevectorFrobenius => "statevector-frobenius",
            CheckMethod::Structural => "structural",
        }
    }
}

impl fmt::Display for CheckMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of one equivalence check: method, verdict, and the
/// certified distance bound it rests on.
///
/// `distance` is always a certified **upper bound** on the
/// phase-minimized operator-norm distance between the two circuits'
/// unitaries (exactly `0.0` for a passing [`CheckMethod::ExactRing`]
/// check); `equivalent` is `distance <= bound`. Serializes to a stable
/// single-line JSON object via [`Certificate::to_json`].
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// The checking tier that decided this certificate.
    pub method: CheckMethod,
    /// `true` when the circuits are certified equivalent within `bound`.
    pub equivalent: bool,
    /// Certified upper bound on the operator-norm distance.
    pub distance: f64,
    /// The allowed distance (synthesis error budget plus float slack).
    pub bound: f64,
    /// Qubit count of the compared circuits.
    pub n_qubits: usize,
}

impl Certificate {
    /// Serializes as a single-line JSON object with a stable, append-only
    /// key set:
    ///
    /// ```json
    /// {"method": "exact-ring", "equivalent": true, "distance": 0, "bound": 0.01, "n_qubits": 1}
    /// ```
    pub fn to_json(&self) -> String {
        format!(
            "{{\"method\": \"{}\", \"equivalent\": {}, \"distance\": {}, \"bound\": {}, \
             \"n_qubits\": {}}}",
            self.method.label(),
            self.equivalent,
            json_f64(self.distance),
            json_f64(self.bound),
            self.n_qubits,
        )
    }
}

impl fmt::Display for Certificate {
    /// One stable human-readable line, e.g.
    /// `ok (exact-ring, distance 0 <= bound 0.01, 1 qubit(s))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, distance {} {} bound {}, {} qubit(s))",
            if self.equivalent { "ok" } else { "FAIL" },
            self.method,
            self.distance,
            if self.equivalent { "<=" } else { ">" },
            self.bound,
            self.n_qubits,
        )
    }
}

/// JSON number formatting: non-finite values have no JSON literal and
/// become `null` (matching the convention of every JSON writer in this
/// workspace).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let c = Certificate {
            method: CheckMethod::ExactRing,
            equivalent: true,
            distance: 0.0,
            bound: 0.01,
            n_qubits: 1,
        };
        assert_eq!(
            c.to_json(),
            "{\"method\": \"exact-ring\", \"equivalent\": true, \"distance\": 0, \
             \"bound\": 0.01, \"n_qubits\": 1}"
        );
    }

    #[test]
    fn display_reports_verdict() {
        let c = Certificate {
            method: CheckMethod::OperatorNorm,
            equivalent: false,
            distance: 0.5,
            bound: 0.01,
            n_qubits: 1,
        };
        let s = c.to_string();
        assert!(s.starts_with("FAIL"), "{s}");
        assert!(s.contains("operator-norm"), "{s}");
    }

    #[test]
    fn non_finite_distances_become_null() {
        let c = Certificate {
            method: CheckMethod::StatevectorSvd,
            equivalent: false,
            distance: f64::INFINITY,
            bound: 0.01,
            n_qubits: 2,
        };
        assert!(c.to_json().contains("\"distance\": null"), "{}", c.to_json());
    }

    #[test]
    fn method_labels_are_stable() {
        assert_eq!(CheckMethod::ExactRing.label(), "exact-ring");
        assert_eq!(CheckMethod::OperatorNorm.label(), "operator-norm");
        assert_eq!(CheckMethod::StatevectorSvd.label(), "statevector-svd");
        assert_eq!(
            CheckMethod::StatevectorFrobenius.label(),
            "statevector-frobenius"
        );
        assert_eq!(CheckMethod::Structural.label(), "structural");
    }
}
