//! Integration surface for the `trasyn-rs` workspace.
//!
//! This package is named `trasyn-rs` in the root manifest (the library
//! target is `trasyn_rs`). It re-exports the public API of every member
//! crate so that the examples and the cross-crate integration tests in
//! `tests/` can use a single dependency. Library users should depend on the
//! individual crates (`trasyn`, `gridsynth`, `circuit`, ...) directly.

pub use baselines;
pub use circuit;
pub use engine;
pub use gates;
pub use gridsynth;
pub use lint;
pub use qmath;
pub use rings;
pub use sim;
pub use trace;
pub use trasyn;
pub use verify;
pub use workloads;
pub use zxopt;
