//! Cross-crate integration: the full synthesis stacks against each other.

use qmath::distance::unitary_distance;
use qmath::Mat2;
use trasyn::{SynthesisConfig, Trasyn};
use workloads::random::haar_targets;

fn shared_synth() -> &'static Trasyn {
    use std::sync::OnceLock;
    static CELL: OnceLock<Trasyn> = OnceLock::new();
    CELL.get_or_init(|| Trasyn::new(5))
}

#[test]
fn trasyn_and_gridsynth_agree_on_semantics() {
    // Both synthesizers must return sequences whose matrices actually
    // approximate the target to their reported error.
    let synth = shared_synth();
    for (i, u) in haar_targets(5, 0xE2E).iter().enumerate() {
        let t = synth.synthesize(
            u,
            &SynthesisConfig {
                samples: 512,
                budgets: vec![5, 5],
                seed: i as u64,
                ..Default::default()
            },
        );
        assert!(
            (unitary_distance(u, &t.seq.matrix()) - t.error).abs() < 1e-9,
            "trasyn error report mismatch"
        );
        let g = gridsynth::synthesize_u3(u, 0.05).expect("gridsynth converges");
        assert!(
            (unitary_distance(u, &g.seq.matrix()) - g.error).abs() < 1e-9,
            "gridsynth error report mismatch"
        );
        assert!(g.error <= 0.05 + 1e-9);
    }
}

#[test]
fn trasyn_beats_three_rz_on_t_count_at_matched_error() {
    // The paper's core claim, end to end: at comparable error, direct U3
    // synthesis uses fewer T gates than three Rz decompositions. Checked
    // in aggregate over a few targets (individual targets may tie).
    let synth = shared_synth();
    let mut trasyn_t = 0usize;
    let mut grid_t = 0usize;
    for (i, u) in haar_targets(6, 0x3344).iter().enumerate() {
        let t = synth.synthesize(
            u,
            &SynthesisConfig {
                samples: 1024,
                budgets: vec![5, 5],
                min_tensors: 2,
                seed: 77 + i as u64,
                ..Default::default()
            },
        );
        let eps = t.error.clamp(1e-3, 0.4);
        let g = gridsynth::synthesize_u3(u, eps).expect("gridsynth converges");
        trasyn_t += t.t_count();
        grid_t += g.t_count();
    }
    assert!(
        (grid_t as f64) > 1.5 * trasyn_t as f64,
        "expected a clear aggregate T advantage: trasyn {trasyn_t} vs gridsynth {grid_t}"
    );
}

#[test]
fn exact_synthesis_roundtrips_trasyn_output() {
    // gridsynth's exact synthesizer must reproduce trasyn's sequences
    // (they live in the same group).
    use gates::ExactMat2;
    let synth = shared_synth();
    let u = Mat2::u3(0.91, 0.27, -1.4);
    let t = synth.synthesize(
        &u,
        &SynthesisConfig {
            samples: 256,
            budgets: vec![5],
            ..Default::default()
        },
    );
    let exact = ExactMat2::from_seq(&t.seq);
    let re = gridsynth::exact_synth::exact_synthesize(exact).expect("group member");
    assert!(re
        .matrix()
        .approx_eq_phase(&t.seq.matrix(), 1e-8));
    assert!(re.t_count() <= t.seq.t_count() + 1);
}

#[test]
fn peephole_never_hurts_gridsynth_output() {
    // trasyn's step-3 peephole applied to gridsynth sequences must
    // preserve the operator and never increase cost.
    let synth = shared_synth();
    let r = gridsynth::synthesize_rz(0.6182, 1e-2).expect("converges");
    let opt = trasyn::peephole::optimize(&r.seq, synth.table());
    assert!(opt.matrix().approx_eq_phase(&r.seq.matrix(), 1e-8));
    assert!(opt.cost() <= r.seq.cost());
}
