//! Cross-crate property-based tests (proptest).

use gates::{ExactMat2, Gate, GateSeq};
use proptest::prelude::*;
use qmath::distance::{trace_value, unitary_distance};
use qmath::Mat2;

fn arb_gate() -> impl Strategy<Value = Gate> {
    prop::sample::select(Gate::ALL.to_vec())
}

fn arb_seq(max_len: usize) -> impl Strategy<Value = GateSeq> {
    prop::collection::vec(arb_gate(), 0..max_len).prop_map(GateSeq::from_gates)
}

fn arb_unitary() -> impl Strategy<Value = Mat2> {
    (0.0..std::f64::consts::PI, -3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0)
        .prop_map(|(t, p, l, a)| Mat2::u3(t, p, l).scale(qmath::Complex64::cis(a)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequences_produce_unitaries(seq in arb_seq(40)) {
        prop_assert!(seq.matrix().is_unitary(1e-9));
    }

    #[test]
    fn exact_matches_float(seq in arb_seq(30)) {
        let exact = ExactMat2::from_seq(&seq).to_mat2();
        prop_assert!(exact.approx_eq(&seq.matrix(), 1e-8));
    }

    #[test]
    fn simplified_preserves_operator(seq in arb_seq(30)) {
        let s = seq.simplified();
        prop_assert!(s.matrix().approx_eq_phase(&seq.matrix(), 1e-8));
        prop_assert!(s.t_count() <= seq.t_count());
        prop_assert!(s.len() <= seq.len());
    }

    #[test]
    fn distance_is_phase_invariant(u in arb_unitary(), phi in -3.0f64..3.0) {
        let v = u.scale(qmath::Complex64::cis(phi));
        prop_assert!(unitary_distance(&u, &v) < 1e-7);
    }

    #[test]
    fn distance_triangle_ish(a in arb_unitary(), b in arb_unitary(), c in arb_unitary()) {
        // Eq. 2 distance satisfies the triangle inequality up to the small
        // curvature slack of the trace metric.
        let ab = unitary_distance(&a, &b);
        let bc = unitary_distance(&b, &c);
        let ac = unitary_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn trace_value_bounds(u in arb_unitary(), v in arb_unitary()) {
        let t = trace_value(&u, &v);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&t));
    }

    #[test]
    fn euler_roundtrip(u in arb_unitary()) {
        let a = qmath::euler::decompose_u3(&u);
        prop_assert!(a.to_matrix().approx_eq(&u, 1e-8));
    }

    #[test]
    fn exact_synthesis_total(seq in arb_seq(24)) {
        // Every Clifford+T product resynthesizes to the same operator.
        let m = ExactMat2::from_seq(&seq);
        let out = gridsynth::exact_synth::exact_synthesize(m).expect("group member");
        prop_assert!(out.matrix().approx_eq_phase(&seq.matrix(), 1e-7));
    }

    #[test]
    fn rings_norm_multiplicative(
        a0 in -50i128..50, a1 in -50i128..50, a2 in -50i128..50, a3 in -50i128..50,
        b0 in -50i128..50, b1 in -50i128..50, b2 in -50i128..50, b3 in -50i128..50,
    ) {
        use rings::ZOmega;
        let x = ZOmega::new(a0, a1, a2, a3);
        let y = ZOmega::new(b0, b1, b2, b3);
        prop_assert_eq!((x * y).norm(), x.norm() * y.norm());
    }

    #[test]
    fn diophantine_solutions_verify(
        a0 in -6i128..6, a1 in -6i128..6, a2 in -6i128..6, a3 in -6i128..6,
    ) {
        use rings::ZOmega;
        let t = ZOmega::new(a0, a1, a2, a3);
        prop_assume!(!t.is_zero());
        let xi = t.norm_zroot2();
        let sol = gridsynth::diophantine::solve_norm_equation(xi);
        prop_assert!(sol.is_some(), "constructed instance must solve");
        prop_assert_eq!(sol.unwrap().norm_zroot2(), xi);
    }

    #[test]
    fn phasefold_no_t_increase(seq in prop::collection::vec((arb_gate(), 0usize..3), 0..40)) {
        let mut c = circuit::Circuit::new(3);
        for (g, q) in seq {
            c.gate(q, g);
        }
        let o = zxopt::optimize(&c);
        prop_assert!(circuit::metrics::t_count(&o) <= circuit::metrics::t_count(&c));
    }
}
