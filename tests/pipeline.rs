//! Integration of the circuit pipeline: transpile → synthesize →
//! optimize → simulate.

use circuit::levels::{best_for_basis, Basis};
use circuit::metrics::{rotation_count, t_count};
use circuit::synthesize::synthesize_circuit;
use qmath::Mat2;
use sim::fidelity::circuit_state_infidelity;
use trasyn::{SynthesisConfig, Trasyn};
use workloads::qaoa::random_qaoa;

#[test]
fn qaoa_pipeline_end_to_end() {
    let qaoa = random_qaoa(6, 2, 99);
    let (_, u3_rot, lowered) = best_for_basis(&qaoa, Basis::U3);
    let (_, rz_rot, _) = best_for_basis(&qaoa, Basis::Rz);
    assert!(
        u3_rot < rz_rot,
        "U3 IR must merge QAOA rotations: {u3_rot} vs {rz_rot}"
    );

    let synth = Trasyn::new(5);
    let cfg = SynthesisConfig {
        samples: 512,
        budgets: vec![5, 5],
        epsilon: Some(0.05),
        ..Default::default()
    };
    let out = synthesize_circuit(&lowered, |m: &Mat2| {
        let s = synth.synthesize(m, &cfg);
        (s.seq, s.error)
    });
    assert_eq!(rotation_count(&out.circuit), 0, "all rotations replaced");
    assert!(t_count(&out.circuit) > 0, "nontrivial circuit needs T gates");

    // End-to-end fidelity bounded by the additive budget (loose factor
    // for accumulation direction).
    let infid = circuit_state_infidelity(&out.circuit, &qaoa);
    let budget = out.total_error;
    assert!(
        infid <= (budget * budget * 4.0).max(0.05),
        "state infidelity {infid} vs summed synthesis error {budget}"
    );
}

#[test]
fn zxopt_preserves_pipeline_semantics() {
    let qaoa = random_qaoa(4, 1, 5);
    let (_, _, lowered) = best_for_basis(&qaoa, Basis::U3);
    let synth = Trasyn::new(4);
    let cfg = SynthesisConfig {
        samples: 256,
        budgets: vec![4, 4],
        ..Default::default()
    };
    let out = synthesize_circuit(&lowered, |m: &Mat2| {
        let s = synth.synthesize(m, &cfg);
        (s.seq, s.error)
    });
    let optimized = zxopt::optimize(&out.circuit);
    assert!(t_count(&optimized) <= t_count(&out.circuit));
    let drift = circuit_state_infidelity(&optimized, &out.circuit);
    assert!(drift < 1e-9, "optimizer changed the state: {drift}");
}

#[test]
fn resynthesis_baseline_inflates_rotations() {
    let qaoa = random_qaoa(6, 2, 123);
    let (_, u3_rot, _) = best_for_basis(&qaoa, Basis::U3);
    let bq = baselines::resynth::resynthesize(&qaoa);
    assert!(
        rotation_count(&bq) > u3_rot,
        "BQSKit-style resynthesis must produce more rotations ({} vs {u3_rot})",
        rotation_count(&bq)
    );
}

#[test]
fn noise_model_ranks_workflows_like_t_count() {
    // More T gates ⇒ more depolarizing faults ⇒ lower fidelity: the RQ4
    // mechanism, on a tiny instance.
    use sim::density::DensityMatrix;
    use sim::noise::{NoiseModel, NoiseTarget};
    use sim::statevector::State;

    let mut short = circuit::Circuit::new(1);
    short.gate(0, gates::Gate::T);
    let mut long = circuit::Circuit::new(1);
    for _ in 0..9 {
        long.gate(0, gates::Gate::T);
    }
    long.gate(0, gates::Gate::Z); // T^9·Z^... still T up to Clifford? keep target = T^9
    let model = NoiseModel {
        rate: 1e-2,
        target: NoiseTarget::TGatesOnly,
    };
    let mut ideal_short = State::zero(1);
    // Prepare |+> to make T visible.
    let mut prep_short = circuit::Circuit::new(1);
    prep_short.h(0);
    prep_short.extend_circuit(&short);
    ideal_short.apply_circuit(&prep_short);
    let mut rho_s = DensityMatrix::zero(1);
    rho_s.apply_1q(0, &Mat2::h());
    rho_s.apply_noisy_circuit(&short, &model);
    let f_short = rho_s.fidelity_with_pure(&ideal_short);

    let mut prep_long = circuit::Circuit::new(1);
    prep_long.h(0);
    prep_long.extend_circuit(&long);
    let mut ideal_long = State::zero(1);
    ideal_long.apply_circuit(&prep_long);
    let mut rho_l = DensityMatrix::zero(1);
    rho_l.apply_1q(0, &Mat2::h());
    rho_l.apply_noisy_circuit(&long, &model);
    let f_long = rho_l.fidelity_with_pure(&ideal_long);

    assert!(
        f_long < f_short,
        "9 noisy T gates ({f_long}) must beat 1 ({f_short}) in error"
    );
}
