//! Pipeline idempotence: re-running lowering on its own output must not
//! oscillate.
//!
//! Building this property test surfaced (and this PR fixed) two real
//! rewrite pumps:
//!
//! 1. `basis=rz` lowered fused diagonals (`U3 {theta ≈ 0}`) through the
//!    generic three-`Rz` split, emitting `Sdg·H·H·Rz` whose `±π/2` gauge
//!    phase folding pushed across CNOTs on *every* recompile — the `zx`
//!    preset cycled forever with period 4.
//! 2. `commute` hopped rotations over CNOTs toward lone Clifford gates,
//!    where merging cannot reduce the nontrivial-rotation count, so each
//!    recompile of basis-lowered output kept shuffling instructions.
//!
//! With both fixed, every individual pass and every preset in the `U3`
//! basis (plus `none`/`fast` in both bases) is a strict one-step fixed
//! point, pinned below. `default`/`aggressive`/`zx` on `Rz`-lowered
//! output still converge only eventually: lowering runs last, so it can
//! expose genuine cross-CNOT diagonal merges that only the *next* run's
//! commute/fold can exploit — re-running is then a real optimization,
//! not churn — and rare `zx` cases cycle through gauge-equivalent
//! Clifford placements of equal cost (a wire-segment canonical form is
//! future work, tracked in the README). For those presets we pin
//! semantic stability instead: every re-run output is certified
//! equivalent by the `verify` oracle.

use circuit::pass::{PassSpec, PipelineSpec};
use circuit::{Basis, Circuit, Op};
use engine::build_pipeline;
use proptest::prelude::*;

/// Circular angle distance (angles live on the circle; wrapping at ±π
/// must not count as a difference).
fn angle_diff(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(2.0 * std::f64::consts::PI);
    d.min(2.0 * std::f64::consts::PI - d)
}

fn ops_match(a: &circuit::Instr, b: &circuit::Instr, tol: f64) -> bool {
    if a.q0 != b.q0 || a.q1 != b.q1 {
        return false;
    }
    match (a.op, b.op) {
        (Op::Rz(x), Op::Rz(y)) | (Op::Rx(x), Op::Rx(y)) | (Op::Ry(x), Op::Ry(y)) => {
            angle_diff(x, y) < tol
        }
        (
            Op::U3 { theta: t1, phi: p1, lambda: l1 },
            Op::U3 { theta: t2, phi: p2, lambda: l2 },
        ) => angle_diff(t1, t2) < tol && angle_diff(p1, p2) < tol && angle_diff(l1, l2) < tol,
        (Op::Gate1(g), Op::Gate1(h)) => g == h,
        (Op::Cx, Op::Cx) => true,
        _ => false,
    }
}

/// Structural equality: same shape, same gates, angles within `tol`
/// (angle re-composition through `U3` drifts by ~1e-15 per roundtrip).
fn structurally_equal(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    a.n_qubits() == b.n_qubits()
        && a.len() == b.len()
        && a.instrs()
            .iter()
            .zip(b.instrs().iter())
            .all(|(x, y)| ops_match(x, y, tol))
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (1usize..=3, 0usize..=20, 0u64..1_000_000_000)
        .prop_map(|(n, ops, seed)| workloads::random::random_circuit(n, ops, seed))
}

/// The strictly idempotent pipeline instantiations: every single pass,
/// plus the presets whose output contains no bare `Rz` sitting upstream
/// of later merge partners.
fn strict_specs() -> Vec<(PipelineSpec, Basis)> {
    let mut out = Vec::new();
    for tok in ["commute", "fuse", "cx-cancel", "zx-fold", "basis=u3", "basis=rz"] {
        let spec = PipelineSpec::Custom(vec![PassSpec::parse(tok).expect("valid token")]);
        out.push((spec.clone(), Basis::U3));
        out.push((spec, Basis::Rz));
    }
    for preset in ["none", "fast"] {
        let spec = PipelineSpec::parse(preset).expect("valid preset");
        out.push((spec.clone(), Basis::U3));
        out.push((spec, Basis::Rz));
    }
    for preset in ["default", "aggressive"] {
        out.push((PipelineSpec::parse(preset).expect("valid preset"), Basis::U3));
    }
    out
}

/// The remaining preset instantiations, held to semantic stability.
fn eventual_specs() -> Vec<(PipelineSpec, Basis)> {
    vec![
        (PipelineSpec::parse("default").unwrap(), Basis::Rz),
        (PipelineSpec::parse("aggressive").unwrap(), Basis::Rz),
        (PipelineSpec::parse("zx").unwrap(), Basis::U3),
        (PipelineSpec::parse("zx").unwrap(), Basis::Rz),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict one-step fixed point: `p(p(c))` is structurally identical
    /// to `p(c)` for every individual pass and every U3-lowering preset.
    #[test]
    fn passes_and_u3_presets_are_idempotent(c in arb_circuit()) {
        for (spec, basis) in strict_specs() {
            let mut once = c.clone();
            build_pipeline(&spec, basis).run(&mut once);
            let mut twice = once.clone();
            build_pipeline(&spec, basis).run(&mut twice);
            prop_assert!(
                structurally_equal(&once, &twice, 1e-9),
                "pipeline {spec} (basis {basis:?}) rewrote its own output:\nonce:\n{once}\ntwice:\n{twice}\ninput:\n{c}"
            );
        }
    }

    /// Rz-lowered presets: successive re-runs may keep optimizing (and
    /// rare zx cases wander between gauge-equivalent forms), but every
    /// iterate must stay certified-equivalent to the first — rewriting
    /// without oscillating in *meaning*.
    #[test]
    fn rz_presets_rewrite_semantics_preserving(c in arb_circuit()) {
        for (spec, basis) in eventual_specs() {
            let mut first = c.clone();
            build_pipeline(&spec, basis).run(&mut first);
            let mut cur = first.clone();
            for iter in 0..3 {
                let mut next = cur.clone();
                build_pipeline(&spec, basis).run(&mut next);
                let bound = verify::float_slack(first.len() + next.len());
                let cert = verify::verify_circuits(&first, &next, bound)
                    .expect("≤3 qubits fits the oracle");
                prop_assert!(
                    cert.equivalent,
                    "pipeline {spec} (basis {basis:?}) drifted semantically at re-run {iter}: {cert}\nfirst:\n{first}\ncurrent:\n{next}"
                );
                if structurally_equal(&cur, &next, 1e-9) {
                    break; // reached the fixed point early
                }
                cur = next;
            }
        }
    }

    /// The former zx 4-cycle shape (diagonal phases pumped across an
    /// `H·Z·H` conjugation and a CNOT) now reaches a structural fixed
    /// point within a few re-runs — before the `basis=rz` diagonal fix
    /// it cycled with period 4 forever, the angles shifting by π/2 per
    /// recompile.
    #[test]
    fn former_zx_oscillator_converges(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let mut c = Circuit::new(2);
        c.rz(0, a);
        c.h(0);
        c.gate(0, gates::Gate::Z);
        c.h(0);
        c.cx(0, 1);
        c.rz(0, b);
        let spec = PipelineSpec::parse("zx").expect("valid preset");
        let mut cur = c.clone();
        build_pipeline(&spec, Basis::Rz).run(&mut cur);
        let mut converged = false;
        for _ in 0..4 {
            let mut next = cur.clone();
            build_pipeline(&spec, Basis::Rz).run(&mut next);
            if structurally_equal(&cur, &next, 1e-9) {
                converged = true;
                break;
            }
            cur = next;
        }
        prop_assert!(converged, "oscillation regressed for (a, b) = ({a}, {b}):\n{cur}");
    }
}
