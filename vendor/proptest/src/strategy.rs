//! Value-generation strategies.

use crate::rt::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Upstream strategies produce shrinkable value *trees*; this subset
/// generates plain values (no shrinking), which is all the workspace's tests
/// observe on the passing path.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The output of [`Strategy::prop_filter`]: rejection-samples the source.
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}): gave up after 10000 rejections", self.whence);
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::distributions::uniform::SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::distributions::uniform::SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0/0, S1/1);
tuple_strategy!(S0/0, S1/1, S2/2);
tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6);
tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7);

/// Uniform choice from a fixed list (see [`crate::sample::select`]).
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    pub(crate) items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}

/// Length bounds for [`crate::collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection::vec: empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The output of [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
