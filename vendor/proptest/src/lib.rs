//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest its property tests use: the [`Strategy`] trait with
//! `prop_map`, range / tuple / collection / select strategies, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, all intentional:
//!
//! * **Deterministic**: every test derives its RNG seed from the test's name,
//!   so `cargo test` produces identical case streams on every run.
//! * **No shrinking**: a failing case panics with the generated inputs'
//!   failure message instead of searching for a minimal counterexample.
//! * **No persistence**: no `proptest-regressions` files are written.
//!
//! Swap this for the real crate by editing `[workspace.dependencies]` in the
//! root manifest; no source changes are required.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is false for these inputs.
    Fail(String),
    /// `prop_assume!` rejection: inputs outside the property's domain.
    Reject,
}

/// Runtime support used by the macro expansions. Not part of the public API.
#[doc(hidden)]
pub mod rt {
    pub type TestRng = rand::rngs::StdRng;

    /// Derive a per-test deterministic RNG from the test's name (FNV-1a).
    pub fn seed_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        <TestRng as rand::SeedableRng>::seed_from_u64(h)
    }
}

/// Sampling strategies over explicit item lists (`prop::sample`).
pub mod sample {
    pub use crate::strategy::Select;

    /// Uniformly select one of `items` (cloned) per generated case.
    pub fn select<T: Clone + core::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "prop::sample::select: empty choice list");
        Select { items }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: crate::Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports the upstream form
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10i64, y in my_strategy()) { ... }
/// }
/// ```
///
/// Each test runs `config.cases` accepted cases with a name-seeded
/// deterministic RNG; `prop_assume!` rejections are retried (with a cap),
/// `prop_assert*` failures panic with the case's message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::rt::seed_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut __passed: u32 = 0;
                let mut __attempts: u64 = 0;
                while __passed < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases as u64 * 16 + 1024 {
                        panic!(
                            "proptest {}: too many prop_assume! rejections ({} attempts for {} cases)",
                            stringify!($name), __attempts, __config.cases
                        );
                    }
                    let __outcome = (|__rng: &mut $crate::rt::TestRng|
                        -> ::core::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })(&mut __rng);
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), __passed, __msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}
