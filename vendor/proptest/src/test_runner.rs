//! Test-runner configuration (the `ProptestConfig` of the prelude).

/// Subset of upstream's `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Unused here (no shrinking); kept for source compatibility.
    pub max_shrink_iters: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}
