//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (the 0.8 surface this workspace uses).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually needs:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits;
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (deterministic,
//!   splitmix64-seeded, *not* the upstream ChaCha12 — streams differ from
//!   upstream, which is fine because everything in this workspace seeds
//!   explicitly and only needs self-consistency);
//! * `gen`, `gen_range` (half-open and inclusive ranges over the primitive
//!   integers and floats), `gen_bool`, `fill_bytes`;
//! * [`distributions::Standard`] / [`distributions::Distribution`].
//!
//! Swap this for the real crate by editing `[workspace.dependencies]` in the
//! root manifest; no source changes are required.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed from a single `u64` (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic fallback for `rand::thread_rng()`.
///
/// Upstream's `thread_rng` is entropy-seeded; that nondeterminism is exactly
/// what this workspace's tests must avoid, so here it returns a fixed-seed
/// [`rngs::StdRng`]. Library and test code should pass explicit seeded rngs
/// instead of calling this; it exists so stray call sites still compile and
/// stay reproducible.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x7468_7265_6164_5f72) // b"thread_r"
}

/// `rand::random::<T>()` — deterministic here, see [`thread_rng`].
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    thread_rng().gen()
}
