//! The `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the full integer range,
/// uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                wide as $t
            }
        }
    )*};
}
standard_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from ranges, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use super::*;
    use core::ops::{Range, RangeInclusive};

    /// A range that can produce a uniformly distributed `T`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types with a primitive uniform sampler.
    pub trait SampleUniform: Sized {
        /// Uniform over `[lo, hi]` (both inclusive).
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        /// Uniform over `[lo, hi)`.
        fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_exclusive(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty inclusive range");
            T::sample_inclusive(lo, hi, rng)
        }
    }

    #[inline]
    fn wide_word<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }

    macro_rules! uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    // Span of an inclusive range over the full type domain can
                    // overflow the unsigned type only for the full range, where
                    // any word is valid.
                    let span = (hi as $u).wrapping_sub(lo as $u);
                    if span == <$u>::MAX {
                        return (wide_word(rng) as $u) as $t;
                    }
                    let span = span as u128 + 1;
                    // Modulo is biased by at most span/2^128 — far below any
                    // observable effect for the ranges this workspace uses.
                    let v = wide_word(rng) % span;
                    lo.wrapping_add(v as $t)
                }
                #[inline]
                fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                    let v = wide_word(rng) % span;
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }
    uniform_int!(
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize
    );

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    Self::sample_exclusive(lo, hi, rng)
                }
                #[inline]
                fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    let unit: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                    // Guard against rounding up to `hi` in half-open ranges.
                    if v >= hi as f64 { lo } else { v as $t }
                }
            }
        )*};
    }
    uniform_float!(f32, f64);
}
