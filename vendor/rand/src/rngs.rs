//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand::rngs::StdRng` is ChaCha12; the streams therefore differ
/// from upstream for equal seeds. Every consumer in this workspace seeds
/// explicitly and only relies on run-to-run determinism, which this provides.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference impl).
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

/// Alias: this workspace's `StdRng` is already small and fast.
pub type SmallRng = StdRng;
