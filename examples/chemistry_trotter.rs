//! Compile a Trotterized Heisenberg-model simulation (the paper's
//! "quantum Hamiltonian" category) and check end-to-end circuit fidelity
//! of the synthesized Clifford+T program against the ideal circuit.
//!
//! ```sh
//! cargo run --release --example chemistry_trotter
//! ```

use circuit::levels::{best_for_basis, Basis};
use circuit::metrics::{rotation_count, t_count};
use circuit::synthesize::synthesize_circuit;
use qmath::Mat2;
use sim::fidelity::circuit_state_infidelity;
use trasyn::{SynthesisConfig, Trasyn};
use workloads::hamiltonian::{heisenberg_chain, trotter_circuit};

fn main() {
    // Two Trotter steps of a 6-site Heisenberg XXZ chain with field.
    let h = heisenberg_chain(6, 1.0, 0.5, 0.2);
    let circ = trotter_circuit(&h, 2, 0.15);
    println!(
        "Trotter circuit: {} qubits, {} instructions, {} nontrivial rotations",
        circ.n_qubits(),
        circ.len(),
        rotation_count(&circ)
    );

    // Lower to the U3 IR (merging the XX/YY/ZZ basis changes with the
    // rotations wherever possible).
    let (_, rot, lowered) = best_for_basis(&circ, Basis::U3);
    println!("after U3 transpilation: {rot} rotations to synthesize");

    // Synthesize with trasyn at a 1e-2 per-rotation budget.
    let synth = Trasyn::new(6);
    let cfg = SynthesisConfig {
        samples: 1024,
        budgets: vec![6, 6, 6],
        epsilon: Some(1e-2),
        ..SynthesisConfig::default()
    };
    let out = synthesize_circuit(&lowered, |m: &Mat2| {
        let s = synth.synthesize(m, &cfg);
        (s.seq, s.error)
    });
    println!(
        "synthesized: {} T gates, {} distinct rotations invoked, summed error {:.3}",
        t_count(&out.circuit),
        out.distinct_rotations,
        out.total_error
    );

    // End-to-end check: the discrete circuit against the ideal one.
    let infid = circuit_state_infidelity(&out.circuit, &circ);
    println!("end-to-end state infidelity vs ideal: {infid:.3e}");
    assert!(
        infid < (out.total_error * out.total_error * 4.0).max(1e-3),
        "infidelity must be bounded by the summed synthesis error"
    );
    println!("OK: additive error budgeting holds (paper §4.3).");
}
