//! RQ2 in miniature: given your hardware's logical error rate, what
//! synthesis error threshold minimizes overall process infidelity?
//!
//! Sweeps thresholds for a handful of rotations, composing synthesis and
//! depolarizing logical error exactly in the PTM picture, and reports the
//! optimum (paper Figure 9: `eps* ≈ 1.22·√λ`).
//!
//! ```sh
//! cargo run --release --example error_budget
//! ```

use gridsynth::synthesize_rz;
use qmath::Mat2;
use sim::noise::{NoiseModel, NoiseTarget};

fn main() {
    let logical_error_rate = 1e-5;
    let angles = [0.3117f64, 1.019, -0.7432, 2.4871, 0.1133];
    let thresholds: Vec<f64> = (0..9).map(|i| 10f64.powf(-0.5 - 0.35 * i as f64)).collect();

    println!("logical error rate: {logical_error_rate:.0e} (depolarizing per T gate)");
    println!(
        "\n{:<14} {:>9} {:>22}",
        "synth eps", "mean #T", "mean process infid"
    );
    let mut best = (f64::INFINITY, 0.0f64);
    for &eps in &thresholds {
        let mut t_total = 0usize;
        let mut infid_total = 0.0f64;
        for &theta in &angles {
            let r = synthesize_rz(theta, eps).expect("gridsynth converges");
            t_total += r.t_count();
            let model = NoiseModel {
                rate: logical_error_rate,
                target: NoiseTarget::TGatesOnly,
            };
            infid_total += model.process_infidelity(&r.seq, &Mat2::rz(theta));
        }
        let mean_t = t_total as f64 / angles.len() as f64;
        let mean_infid = infid_total / angles.len() as f64;
        println!("{eps:<14.3e} {mean_t:>9.1} {mean_infid:>22.3e}");
        if mean_infid < best.0 {
            best = (mean_infid, eps);
        }
    }
    let law = 1.22 * logical_error_rate.sqrt();
    println!("\noptimal threshold measured: {:.2e}", best.1);
    println!("paper's square-root law:    1.22·sqrt(λ) = {law:.2e}");
    println!(
        "\nLesson: below the optimum, extra T gates add more logical error\n\
         than they remove synthesis error — synthesize *coarser* on early\n\
         fault-tolerant hardware."
    );
}
