//! Compile a QAOA MaxCut circuit to Clifford+T with both workflows and
//! compare fault-tolerant resource costs (the paper's §3.4 scenario).
//!
//! ```sh
//! cargo run --release --example qaoa_compilation
//! ```

use circuit::levels::{best_for_basis, Basis};
use circuit::metrics::{clifford_count, count_resources, t_count, t_depth};
use circuit::synthesize::synthesize_circuit;
use gridsynth::synthesize_rz;
use qmath::Mat2;
use trasyn::{SynthesisConfig, Trasyn};
use workloads::qaoa::random_qaoa;

fn main() {
    // A depth-3 QAOA MaxCut instance on a random 3-regular graph.
    let qaoa = random_qaoa(10, 3, 42);
    println!(
        "QAOA circuit: {} qubits, {} instructions",
        qaoa.n_qubits(),
        qaoa.len()
    );

    // Transpile into both IRs, picking the best of the 16 settings per
    // basis (Figure 6 methodology).
    let (rz_setting, rz_rot, rz_circ) = best_for_basis(&qaoa, Basis::Rz);
    let (u3_setting, u3_rot, u3_circ) = best_for_basis(&qaoa, Basis::U3);
    println!("\nbest Rz setting {rz_setting:?}: {rz_rot} nontrivial rotations");
    println!("best U3 setting {u3_setting:?}: {u3_rot} nontrivial rotations");
    println!(
        "rotation reduction from the U3 IR: {:.2}x (paper: ~1.67x for QAOA)",
        rz_rot as f64 / u3_rot.max(1) as f64
    );

    // Synthesize every rotation: trasyn for U3, gridsynth for Rz.
    let eps = 0.02;
    let synth = Trasyn::new(6);
    let cfg = SynthesisConfig {
        samples: 1024,
        budgets: vec![6, 6, 6],
        epsilon: Some(eps),
        ..SynthesisConfig::default()
    };
    let u3_out = synthesize_circuit(&u3_circ, |m: &Mat2| {
        let s = synth.synthesize(m, &cfg);
        (s.seq, s.error)
    });
    let rz_out = synthesize_circuit(&rz_circ, |m: &Mat2| {
        let theta = (m.e[3] / m.e[0]).arg(); // diagonal in the Rz basis
        let r = synthesize_rz(theta, eps * u3_rot as f64 / rz_rot as f64)
            .expect("gridsynth converges");
        (r.seq, r.error)
    });

    println!("\n{:<22} {:>10} {:>10}", "", "trasyn/U3", "gridsynth/Rz");
    println!(
        "{:<22} {:>10} {:>10}",
        "T count",
        t_count(&u3_out.circuit),
        t_count(&rz_out.circuit)
    );
    println!(
        "{:<22} {:>10} {:>10}",
        "T depth",
        t_depth(&u3_out.circuit),
        t_depth(&rz_out.circuit)
    );
    println!(
        "{:<22} {:>10} {:>10}",
        "Clifford count",
        clifford_count(&u3_out.circuit),
        clifford_count(&rz_out.circuit)
    );
    println!(
        "{:<22} {:>10.4} {:>10.4}",
        "summed synth error", u3_out.total_error, rz_out.total_error
    );
    let r = count_resources(&u3_out.circuit);
    println!("\nfull resource bundle (trasyn workflow): {r:?}");
    println!(
        "\nT-count reduction: {:.2}x",
        t_count(&rz_out.circuit) as f64 / t_count(&u3_out.circuit).max(1) as f64
    );
}
