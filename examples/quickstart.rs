//! Quickstart: synthesize one arbitrary single-qubit unitary with trasyn
//! and compare against the gridsynth three-Rz workflow.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qmath::{distance::unitary_distance, Mat2};
use trasyn::{SynthesisConfig, Trasyn};

fn main() {
    // The target: an arbitrary U3 rotation (think "one fused rotation from
    // your application circuit").
    let target = Mat2::u3(0.7345, -1.2210, 0.4184);

    // Step 0 (one-time): enumerate all unique Clifford+T matrices with up
    // to 6 T gates — 24·(3·2⁶ − 2) = 4,560 of them.
    println!("building the trasyn table ...");
    let synth = Trasyn::new(6);
    println!("table size: {} unique matrices", synth.table().len());

    // Steps 1-3 wrapped in Algorithm 1: escalate from 1 tensor (a pure
    // table lookup) to 3 tensors (up to 18 T gates) until the error
    // threshold is met.
    let cfg = SynthesisConfig {
        samples: 2048,
        budgets: vec![6, 6, 6],
        epsilon: Some(2e-2),
        ..SynthesisConfig::default()
    };
    let out = synth.synthesize(&target, &cfg);

    println!("\ntrasyn result:");
    println!("  sequence : {}", out.seq);
    println!("  T count  : {}", out.t_count());
    println!("  Cliffords: {}", out.clifford_count());
    println!("  error    : {:.3e}", out.error);
    assert!(unitary_distance(&target, &out.seq.matrix()) <= out.error + 1e-12);

    // The baseline: three separate Rz syntheses (paper Eq. 1) at a third
    // of the budget each.
    let gs = gridsynth::synthesize_u3(&target, 2e-2).expect("gridsynth converges");
    println!("\ngridsynth (3x Rz) result:");
    println!("  T count  : {}", gs.t_count());
    println!("  Cliffords: {}", gs.clifford_count());
    println!("  error    : {:.3e}", gs.error);

    println!(
        "\nT-count reduction: {:.2}x  (paper: ~3x per unitary)",
        gs.t_count() as f64 / out.t_count().max(1) as f64
    );
}
