#!/usr/bin/env bash
# Regenerate a serving-perf snapshot and (optionally) append it to the
# checked-in BENCH_server.json perf trajectory.
#
# One command, fixed seed and workload, so successive snapshots are
# comparable run-to-run on the same machine. Absolute milliseconds still
# vary with hardware; when reading the trajectory across commits, track
# ratios (throughput, hit rate, queue-wait vs service split), not raw ms.
# Each snapshot records its provenance (git rev, host, CPU count) in
# "config" for exactly that reason.
#
#   scripts/bench_snapshot.sh                     # writes BENCH_server.json (one snapshot)
#   REQUESTS=500 OUT=bench.json scripts/bench_snapshot.sh
#   APPEND=1 OUT=BENCH_server.json scripts/bench_snapshot.sh
#       # append a fresh snapshot to the trajectory instead of overwriting
#   PROFILE=1 scripts/bench_snapshot.sh           # alloc accounting on (--profile)
#   PROFILE_OUT=profile.json scripts/bench_snapshot.sh
#       # also save the server's /debug/profile JSON after the run
#   CORE=thread scripts/bench_snapshot.sh         # thread-per-connection core
#   SWEEP=500:500:8 scripts/bench_snapshot.sh     # open-loop saturation sweep
#   OPEN_LOOP=1 RATE=1000 scripts/bench_snapshot.sh
#       # one open-loop step at a fixed offered rate
#   CACHE_POLICY=lru scripts/bench_snapshot.sh    # eviction policy under test
#   CACHE_TRACE=run.trc scripts/bench_snapshot.sh
#       # also record the cache access trace (replay: trasyn-cachesim)
#
# Knobs (env): REQUESTS, CONNECTIONS, MIX, SEED, OUT, APPEND, PROFILE,
# PROFILE_OUT, CORE (event|thread), HTTP_WORKERS, QUEUE_DEPTH, MAX_CONNS,
# KEEPALIVE_MS, OPEN_LOOP, RATE, SWEEP (START:STEP:COUNT),
# SWEEP_STEP_SECS, CACHE_POLICY (fifo|lru|2q|freq), CACHE_TRACE.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${REQUESTS:-2000}"
CONNECTIONS="${CONNECTIONS:-4}"
MIX="${MIX:-mixed}"
SEED="${SEED:-42}"
OUT="${OUT:-BENCH_server.json}"
APPEND="${APPEND:-0}"
PROFILE="${PROFILE:-0}"
PROFILE_OUT="${PROFILE_OUT:-}"
CORE="${CORE:-event}"
HTTP_WORKERS="${HTTP_WORKERS:-4}"
QUEUE_DEPTH="${QUEUE_DEPTH:-64}"
MAX_CONNS="${MAX_CONNS:-10240}"
KEEPALIVE_MS="${KEEPALIVE_MS:-5000}"
OPEN_LOOP="${OPEN_LOOP:-0}"
RATE="${RATE:-0}"
SWEEP="${SWEEP:-}"
SWEEP_STEP_SECS="${SWEEP_STEP_SECS:-3}"
CACHE_POLICY="${CACHE_POLICY:-fifo}"
CACHE_TRACE="${CACHE_TRACE:-}"

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
HOST="$(uname -n 2>/dev/null || echo unknown)"

cargo build --release -p server

ADDR_FILE="$(mktemp)"
SNAP_FILE="$(mktemp)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -f "$ADDR_FILE" "$SNAP_FILE"
}
trap cleanup EXIT

SERVER_FLAGS=(--cache-policy "$CACHE_POLICY")
[ "$PROFILE" = "1" ] && SERVER_FLAGS+=(--profile)
[ -n "$CACHE_TRACE" ] && SERVER_FLAGS+=(--cache-trace "$CACHE_TRACE")
case "$CORE" in
    event) SERVER_FLAGS+=(--event-core) ;;
    thread) SERVER_FLAGS+=(--thread-core) ;;
    *) echo "error: CORE must be 'event' or 'thread', got '$CORE'" >&2; exit 1 ;;
esac
./target/release/trasyn-server \
    --addr 127.0.0.1:0 --addr-file "$ADDR_FILE" \
    --http-workers "$HTTP_WORKERS" --queue-depth "$QUEUE_DEPTH" \
    --max-conns "$MAX_CONNS" --keepalive-timeout-ms "$KEEPALIVE_MS" \
    "${SERVER_FLAGS[@]+"${SERVER_FLAGS[@]}"}" &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$ADDR_FILE" ] && break
    sleep 0.1
done
[ -s "$ADDR_FILE" ] || { echo "error: server did not report its address" >&2; exit 1; }

LOADGEN_FLAGS=(--trace-summary --profile-summary)
[ -n "$PROFILE_OUT" ] && LOADGEN_FLAGS+=(--profile-json "$PROFILE_OUT")
if [ -n "$SWEEP" ]; then
    # Sweep mode replaces the fixed request count: a sequence of
    # open-loop steps, snapshot taken from the final (highest-rate) step
    # with the full per-step table and knee under "sweep".
    LOADGEN_FLAGS+=(--sweep "$SWEEP" --sweep-step-secs "$SWEEP_STEP_SECS")
elif [ "$OPEN_LOOP" = "1" ]; then
    [ "$RATE" != "0" ] || { echo "error: OPEN_LOOP=1 needs RATE=<req/s>" >&2; exit 1; }
    LOADGEN_FLAGS+=(--open-loop --rate "$RATE" --requests "$REQUESTS")
else
    LOADGEN_FLAGS+=(--requests "$REQUESTS")
fi
./target/release/trasyn-loadgen \
    --addr "$(cat "$ADDR_FILE")" \
    --connections "$CONNECTIONS" --mix "$MIX" --seed "$SEED" \
    --git-rev "$GIT_REV" --host "$HOST" \
    --json "$SNAP_FILE" --fail-on-error "${LOADGEN_FLAGS[@]}"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""

if [ "$APPEND" = "1" ]; then
    ./target/release/trasyn-benchdiff append "$OUT" "$SNAP_FILE"
else
    cp "$SNAP_FILE" "$OUT"
    echo "wrote $OUT"
fi
