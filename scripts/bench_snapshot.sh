#!/usr/bin/env bash
# Regenerate BENCH_server.json — the checked-in serving-perf trajectory.
#
# One command, fixed seed and workload, so successive snapshots are
# comparable run-to-run on the same machine. Absolute milliseconds still
# vary with hardware; when reading the trajectory across commits, track
# ratios (throughput, hit rate, queue-wait vs service split), not raw ms.
#
#   scripts/bench_snapshot.sh                 # writes BENCH_server.json
#   REQUESTS=500 OUT=bench.json scripts/bench_snapshot.sh
#
# Knobs (env): REQUESTS, CONNECTIONS, MIX, SEED, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${REQUESTS:-2000}"
CONNECTIONS="${CONNECTIONS:-4}"
MIX="${MIX:-mixed}"
SEED="${SEED:-42}"
OUT="${OUT:-BENCH_server.json}"

cargo build --release -p server

ADDR_FILE="$(mktemp)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -f "$ADDR_FILE"
}
trap cleanup EXIT

./target/release/trasyn-server \
    --addr 127.0.0.1:0 --addr-file "$ADDR_FILE" \
    --http-workers 4 --queue-depth 64 &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$ADDR_FILE" ] && break
    sleep 0.1
done
[ -s "$ADDR_FILE" ] || { echo "error: server did not report its address" >&2; exit 1; }

./target/release/trasyn-loadgen \
    --addr "$(cat "$ADDR_FILE")" \
    --connections "$CONNECTIONS" --requests "$REQUESTS" --mix "$MIX" --seed "$SEED" \
    --json "$OUT" --trace-summary --fail-on-error

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "wrote $OUT"
